"""Cycle-level behavioural model of the DP-Box (paper Section IV).

The model is faithful to the paper's architecture:

* a 3-bit **command port** plus a signed value port (Section IV-A).  The
  ports are wires: they hold whatever the host last drove, which is why
  the Do Nothing command exists — "if not used, the DP-Box would
  immediately begin noising the sensor value again".  The Set Threshold
  toggle is edge-triggered ("needs to be re-sent to toggle again").
* three **phases** — initialization (budget/replenishment lock-in, cannot
  be re-entered without a power cycle), waiting (replenishment timer
  ticks, next Laplace sample prefetched), noising (Section IV-C);
* **latency**: one cycle to load the registers, one to produce the noised
  output; thresholding adds nothing; every resample adds one cycle
  (Section V);
* an embedded **budget engine** implementing Algorithm 1 with the exact
  Fig.-8 segment table, caching, and periodic replenishment;
* ``ε = 2**-nm`` privacy levels so noise scaling is a bit shift (eq. 19).

Use :class:`DPBox` directly for cycle-accurate experiments, or the
:class:`DPBoxDriver` convenience wrapper that issues the command
sequences a real integration would.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import (
    CalibrationError,
    ConfigurationError,
    HardwareProtocolError,
    UncalibratableConfigError,
)
from ..privacy.loss import DiscreteMechanismFamily, input_grid_codes
from ..privacy.thresholds import calibrate_threshold_exact
from ..rng.cordic import CordicLn
from ..rng.laplace_fxp import FxpLaplaceConfig, FxpLaplaceRng
from ..rng.urng import NumpySource, UniformCodeSource
from ..runtime import EngineCharge, ReleasePipeline, default_pipeline
from ..sim import Clock, Module
from .budget import BudgetEngine
from .commands import Command
from .config import DPBoxConfig, GuardMode, validate_epsilon_exponent
from .fsm import Phase
from .segments import SegmentTable, build_segment_table

__all__ = ["DPBox", "DPBoxDriver", "NoisingResult"]


@dataclasses.dataclass(frozen=True)
class NoisingResult:
    """One completed noising transaction."""

    #: Noised output in real units.
    value: float
    #: DP-Box cycles from Start Noising to ready (2 + resamples).
    cycles: int
    #: Number of Laplace samples drawn (1 + resamples).
    draws: int
    #: Loss charged against the budget (0 when served from cache).
    charged: float
    #: True when the reply came from the output cache.
    from_cache: bool


@dataclasses.dataclass
class _RuntimeState:
    """Mechanism state derived from the runtime configuration.

    The grid is anchored at the range lower bound: code ``k`` represents
    the value ``origin + k·Δ``, so the sensor range maps exactly onto
    codes ``[0, d/Δ]`` regardless of where it sits in absolute units.
    """

    delta: float
    origin: float
    k_m: int
    k_M: int
    k_th: int
    rng: FxpLaplaceRng
    table: SegmentTable
    mode: GuardMode


class DPBox(Module):
    """The DP-Box hardware module."""

    def __init__(
        self,
        config: DPBoxConfig,
        clock: Optional[Clock] = None,
        source: Optional[UniformCodeSource] = None,
        pipeline: Optional[ReleasePipeline] = None,
    ):
        clock = clock or Clock(frequency_hz=config.frequency_hz)
        super().__init__(clock)
        self.config = config
        self.source = source if source is not None else NumpySource()
        self._pipeline = pipeline
        self._log_backend = (
            CordicLn(frac_bits=config.cordic_frac_bits, n_iterations=24)
            if config.use_cordic_log
            else None
        )

        # Input ports (wires: hold the last driven value).
        self.cmd_port: Command = Command.DO_NOTHING
        self.value_port: float = 0.0
        self._prev_cmd: Command = Command.DO_NOTHING

        # Output ports.
        self.output: float = 0.0
        self.ready: bool = False

        # Architectural state.
        self._phase = self.reg(Phase.INITIALIZATION)
        self._nm: Optional[int] = None  # ε exponent
        self._sensor_value: Optional[float] = None
        self._r_u: Optional[float] = None
        self._r_l: Optional[float] = None
        self._mode: GuardMode = config.guard_mode
        self._budget_amount: Optional[float] = None
        self._replenish_period: Optional[int] = None

        # Internal noising state.
        self._prefetched_code: Optional[int] = None
        self._noising_cycles = 0
        self._noising_draws = 0
        self._loaded = False
        self._fixed_pick: Optional[Tuple[Optional[int]]] = None
        self._last_result: Optional[NoisingResult] = None

        self._engine: Optional[BudgetEngine] = None
        self._runtime: Optional[_RuntimeState] = None
        self._calibration_cache: Dict[Tuple, Tuple[int, SegmentTable]] = {}

    # ------------------------------------------------------------------
    # External interface
    # ------------------------------------------------------------------
    @property
    def phase(self) -> Phase:
        """Current FSM phase."""
        return self._phase.q

    @property
    def guard_mode(self) -> GuardMode:
        """Currently selected guard (Set Threshold toggles it)."""
        return self._mode

    @property
    def epsilon(self) -> float:
        """Current privacy level ``2**-nm`` (eq. 19)."""
        if self._nm is None:
            raise HardwareProtocolError("epsilon has not been configured")
        return 2.0 ** (-self._nm)

    def issue(self, command: Command, value: float = 0.0) -> None:
        """Drive the command and value ports (they hold until re-driven)."""
        self.cmd_port = command
        self.value_port = float(value)

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------
    def _combinational(self) -> None:
        phase = self._phase.q
        cmd = self.cmd_port
        rising = cmd is not self._prev_cmd
        self._prev_cmd = cmd
        if phase is Phase.INITIALIZATION:
            self._init_phase(cmd, self.value_port)
        elif phase is Phase.WAITING:
            self._waiting_phase(cmd, self.value_port, rising)
        else:
            self._noising_phase()

    # --- initialization ------------------------------------------------
    def _init_phase(self, cmd: Command, val: float) -> None:
        if cmd is Command.SET_EPSILON:
            if val <= 0:
                raise HardwareProtocolError("budget must be positive")
            self._budget_amount = float(val)
        elif cmd is Command.SET_RANGE_UPPER:
            if val <= 0 or val != int(val):
                raise HardwareProtocolError(
                    "replenishment period must be a positive cycle count"
                )
            self._replenish_period = int(val)
        elif cmd is Command.START_NOISING:
            if self._budget_amount is None:
                raise HardwareProtocolError(
                    "budget must be set before leaving initialization"
                )
            self._phase.set(Phase.WAITING)
        elif cmd is Command.DO_NOTHING:
            pass
        else:
            raise HardwareProtocolError(
                f"command {cmd.name} invalid during initialization"
            )

    # --- waiting ---------------------------------------------------------
    def _waiting_phase(self, cmd: Command, val: float, rising: bool) -> None:
        if self._engine is not None:
            self._engine.advance_cycles(1)
        if cmd is Command.SET_EPSILON:
            nm = int(val)
            try:
                validate_epsilon_exponent(nm)
            except ConfigurationError as exc:
                # A bad value on the port is a host protocol violation.
                raise HardwareProtocolError(str(exc)) from exc
            if nm != self._nm:
                self._nm = nm
                self._invalidate_runtime()
        elif cmd is Command.SET_SENSOR_VALUE:
            self._sensor_value = val
        elif cmd is Command.SET_RANGE_UPPER:
            if val != self._r_u:
                self._r_u = val
                self._invalidate_runtime()
        elif cmd is Command.SET_RANGE_LOWER:
            if val != self._r_l:
                self._r_l = val
                self._invalidate_runtime()
        elif cmd is Command.SET_THRESHOLD:
            if rising:  # edge-triggered toggle
                self._mode = self._mode.toggled()
                self._invalidate_runtime()
        elif cmd is Command.START_NOISING:
            self._begin_noising()
            return
        # Prefetch the next Laplace sample so noising can be single-cycle
        # (paper: "a new noise sample [is generated] immediately upon
        # entering this stage").  Skipped while the configuration is
        # transiently inconsistent (e.g. the host has updated one range
        # bound but not yet the other).
        if (
            self._prefetched_code is None
            and self._runtime_ready()
            and self._r_u > self._r_l  # type: ignore[operator]
        ):
            self._ensure_runtime()
            self._prefetched_code = self._draw_code()

    # --- noising -----------------------------------------------------------
    def _begin_noising(self) -> None:
        if not self._runtime_ready() or self._sensor_value is None:
            raise HardwareProtocolError(
                "ε, sensor value and both range bounds must be set before Start Noising"
            )
        rt = self._ensure_runtime()
        x = self._sensor_value
        lo = rt.origin + rt.k_m * rt.delta
        hi = rt.origin + rt.k_M * rt.delta
        if not lo - 1e-9 <= x <= hi + 1e-9:
            raise HardwareProtocolError("sensor value outside the configured range")
        self.ready = False
        self._noising_cycles = 0
        self._noising_draws = 0
        self._loaded = False
        self._fixed_pick = None
        self._phase.set(Phase.NOISING)

    def _noising_phase(self) -> None:
        rt = self._runtime
        assert rt is not None and self._sensor_value is not None
        self._noising_cycles += 1
        if not self._loaded:
            # Cycle 1: load the operand registers.
            self._loaded = True
            return
        k_x = int(
            np.clip(
                round((self._sensor_value - rt.origin) / rt.delta), rt.k_m, rt.k_M
            )
        )
        lo, hi = rt.k_m - rt.k_th, rt.k_M + rt.k_th
        n_fixed = self.config.fixed_resample_draws
        if rt.mode is GuardMode.RESAMPLE and n_fixed > 0:
            self._fixed_draw_noising(k_x, lo, hi, n_fixed)
            return
        if self._prefetched_code is None:
            self._prefetched_code = self._draw_code()
        k_n = self._prefetched_code
        self._prefetched_code = None
        self._noising_draws += 1
        k_y = k_x + k_n
        if rt.mode is GuardMode.THRESHOLD:
            k_y = min(max(k_y, lo), hi)
        elif not lo <= k_y <= hi:
            # Resample: a fresh sample is ready every cycle (Section IV-C.3).
            self._prefetched_code = self._draw_code()
            return
        self._finish_noising(k_y)

    def _fixed_draw_noising(self, k_x: int, lo: int, hi: int, n_fixed: int) -> None:
        """Timing-channel mitigation: draw a fixed batch, pick one.

        Latency is a constant ``1 + n_fixed`` cycles regardless of the
        sensor value (unless the whole batch misses, which falls back to
        per-cycle resampling and is astronomically unlikely for calibrated
        thresholds).
        """
        rt = self._runtime
        assert rt is not None
        if self._fixed_pick is None:
            codes = k_x + rt.rng.sample_codes(n_fixed)
            self._noising_draws += n_fixed
            good = codes[(codes >= lo) & (codes <= hi)]
            self._fixed_pick = (int(good[0]) if good.size else None,)
        if self._noising_cycles < 1 + n_fixed:
            return  # burn the constant-latency cycles
        pick = self._fixed_pick[0]
        if pick is None:
            # Whole batch missed: degrade to one redraw per cycle.
            k_n = int(rt.rng.sample_codes(1)[0])
            self._noising_draws += 1
            k_y = k_x + k_n
            if not lo <= k_y <= hi:
                return
            pick = k_y
        self._finish_noising(pick)

    def _finish_noising(self, k_y: int) -> None:
        # Start Noising's charge + event go through the release pipeline
        # (EngineCharge wraps the embedded budget engine), so hardware
        # noisings land in the same trace as mechanism-level releases —
        # with their cycle latency attached.
        rt = self._runtime
        assert rt is not None and self._engine is not None
        charge = self.pipeline.charge_and_emit(
            mechanism="dpbox",
            epsilon=self.epsilon,
            claimed_loss=self.config.loss_multiple * self.epsilon,
            guard=(
                "resample" if rt.mode is GuardMode.RESAMPLE else "threshold"
            ),
            k_fresh=int(k_y),
            accounting=EngineCharge(self._engine),
            draws=self._noising_draws,
            cycles=self._noising_cycles,
            kernel=rt.rng.kernel,
        )
        self.output = rt.origin + int(charge.codes[0]) * rt.delta
        self.ready = True
        self._last_result = NoisingResult(
            value=self.output,
            cycles=self._noising_cycles,
            draws=self._noising_draws,
            charged=float(charge.charged[0]),
            from_cache=bool(charge.cache_hits[0]),
        )
        self._phase.set(Phase.WAITING)

    # ------------------------------------------------------------------
    # Runtime (derived) state management
    # ------------------------------------------------------------------
    def _runtime_ready(self) -> bool:
        return None not in (self._nm, self._r_u, self._r_l)

    def _invalidate_runtime(self) -> None:
        self._runtime = None
        self._prefetched_code = None

    def _draw_code(self) -> int:
        rt = self._ensure_runtime()
        return int(rt.rng.sample_codes(1)[0])

    def _ensure_runtime(self) -> _RuntimeState:
        if self._runtime is not None:
            return self._runtime
        if not self._runtime_ready():
            raise HardwareProtocolError("runtime parameters incomplete")
        assert self._r_u is not None and self._r_l is not None and self._nm is not None
        if self._r_u <= self._r_l:
            raise HardwareProtocolError("range upper bound must exceed lower bound")
        d = self._r_u - self._r_l
        eps = self.epsilon
        delta = self.config.delta_for_range(d)
        key = (self._nm, self._r_l, self._r_u, self._mode)
        if key not in self._calibration_cache:
            try:
                self._calibration_cache[key] = self._calibrate(d, eps, delta)
            except CalibrationError as exc:
                # An uncalibratable epsilon/range combination is a refused
                # command, not a software crash: the hardware cannot build
                # a guard window within the loss bound for this
                # configuration, so the FSM reports it as a protocol-level
                # fault and stays recoverable (reconfigure and retry).
                raise UncalibratableConfigError(str(exc)) from exc
        k_th, table = self._calibration_cache[key]
        cfg = FxpLaplaceConfig(
            input_bits=self.config.input_bits,
            output_bits=self.config.output_bits,
            delta=delta,
            lam=d / eps,
        )
        rng = FxpLaplaceRng(cfg, source=self.source, log_backend=self._log_backend)
        self._runtime = _RuntimeState(
            delta=delta,
            origin=self._r_l,
            k_m=0,
            k_M=int(round(d / delta)),
            k_th=k_th,
            rng=rng,
            table=table,
            mode=self._mode,
        )
        if self._engine is None:
            if self._budget_amount is None:
                raise HardwareProtocolError("initialization phase was never completed")
            self._engine = BudgetEngine(
                table,
                self._budget_amount,
                replenish_period_cycles=self._replenish_period,
                cache_on_exhaustion=self.config.cache_on_exhaustion,
            )
        else:
            self._engine.table = table
        return self._runtime

    def _calibrate(self, d: float, eps: float, delta: float) -> Tuple[int, SegmentTable]:
        cfg = FxpLaplaceConfig(
            input_bits=self.config.input_bits,
            output_bits=self.config.output_bits,
            delta=delta,
            lam=d / eps,
        )
        # Calibration must analyze the PMF of the *deployed* datapath:
        # the enumerated PMF honours the configured log backend.
        noise = FxpLaplaceRng(cfg, log_backend=self._log_backend).exact_pmf()
        # The grid is anchored at r_l, so calibration runs on [0, d].
        codes = input_grid_codes(0.0, d, delta, n_points=5)
        mode = "resample" if self._mode is GuardMode.RESAMPLE else "threshold"
        threshold = calibrate_threshold_exact(
            noise, codes, self.config.loss_multiple * eps, mode=mode
        )
        k_th = int(round(threshold / delta))
        window = (min(codes) - k_th, max(codes) + k_th)
        family = DiscreteMechanismFamily.additive(noise, codes, window=window, mode=mode)
        table = build_segment_table(family, eps, self.config.segment_levels)
        return k_th, table

    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> ReleasePipeline:
        """The release pipeline noisings are charged/emitted through."""
        return self._pipeline if self._pipeline is not None else default_pipeline()

    @pipeline.setter
    def pipeline(self, value: Optional[ReleasePipeline]) -> None:
        self._pipeline = value

    @property
    def last_result(self) -> Optional[NoisingResult]:
        """The most recently completed transaction."""
        return self._last_result

    @property
    def budget_engine(self) -> BudgetEngine:
        """The embedded budget engine (after first use)."""
        if self._engine is None:
            raise HardwareProtocolError("budget engine not yet instantiated")
        return self._engine


class DPBoxDriver:
    """Issues the command sequences a host processor would.

    Wraps a :class:`DPBox` with a software-friendly API: initialize once,
    reconfigure as needed, and call :meth:`noise` per sensor reading.
    After starting a noising the driver drives Do Nothing, as the paper
    notes is required to keep the box from immediately re-noising.
    """

    def __init__(self, box: DPBox):
        self.box = box

    # ------------------------------------------------------------------
    def _step(self, command: Command, value: float = 0.0) -> None:
        self.box.issue(command, value)
        self.box.clock.tick()

    def initialize(self, budget: float, replenish_period: Optional[int] = None) -> None:
        """Run the initialization phase and lock the budget."""
        if self.box.phase is not Phase.INITIALIZATION:
            raise HardwareProtocolError("DP-Box already left initialization")
        self._step(Command.SET_EPSILON, budget)
        if replenish_period is not None:
            self._step(Command.SET_RANGE_UPPER, replenish_period)
        self._step(Command.START_NOISING)
        self._step(Command.DO_NOTHING)

    def configure(
        self,
        epsilon_exponent: int,
        range_lower: float,
        range_upper: float,
        mode: Optional[GuardMode] = None,
    ) -> None:
        """Set ε = 2**-nm and the sensor range; optionally force a mode."""
        self._step(Command.SET_EPSILON, epsilon_exponent)
        self._step(Command.SET_RANGE_LOWER, range_lower)
        self._step(Command.SET_RANGE_UPPER, range_upper)
        if mode is not None and mode is not self.box.guard_mode:
            self._step(Command.SET_THRESHOLD)
        self._step(Command.DO_NOTHING)

    def noise(self, x: float, max_cycles: int = 512) -> NoisingResult:
        """Noise one sensor value; returns output + cycle count."""
        self._step(Command.SET_SENSOR_VALUE, x)
        # Start, then immediately release to Do Nothing so the box does
        # not re-noise after completing.
        self._step(Command.START_NOISING)
        self.box.issue(Command.DO_NOTHING)
        for _ in range(max_cycles):
            if self.box.ready:
                break
            self.box.clock.tick()
        else:
            raise HardwareProtocolError(f"noising did not finish in {max_cycles} cycles")
        result = self.box.last_result
        assert result is not None
        return result
