"""Privacy-loss segmentation of the output range (paper Fig. 8, Alg. 1).

The budget-control algorithm charges a loss that depends on where the
realized noised output lands.  This module derives the segment table
exactly: given the mechanism's conditional-distribution family, it finds,
for each requested loss level ``l_i·ε``, the furthest output offset
(distance beyond the sensor range) whose exact worst-case loss still
stays below the level.

The resulting :class:`SegmentTable` is what the DP-Box budget engine
stores in its (hardware) lookup ROM.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..privacy.loss import DiscreteMechanismFamily

__all__ = ["Segment", "SegmentTable", "build_segment_table"]


@dataclasses.dataclass(frozen=True)
class Segment:
    """Outputs with offset ``<= max_offset_codes`` charge ``loss``.

    ``max_offset_codes`` is the distance (in grid steps) of the output
    beyond the sensor range ``[m, M]``; offset 0 means inside the range.
    """

    max_offset_codes: int
    loss: float


@dataclasses.dataclass(frozen=True)
class SegmentTable:
    """Ascending segments covering the whole guarded output window."""

    k_m: int
    k_M: int
    segments: Tuple[Segment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("segment table cannot be empty")
        offs = [s.max_offset_codes for s in self.segments]
        if offs != sorted(offs) or len(set(offs)) != len(offs):
            raise ConfigurationError("segment offsets must be strictly ascending")

    def offset_of(self, k_y: int) -> int:
        """Distance of an output code beyond the sensor range (0 inside)."""
        if k_y > self.k_M:
            return k_y - self.k_M
        if k_y < self.k_m:
            return self.k_m - k_y
        return 0

    def loss_for_output(self, k_y: int) -> float:
        """Per-query loss charged for a realized output code."""
        off = self.offset_of(k_y)
        for seg in self.segments:
            if off <= seg.max_offset_codes:
                return seg.loss
        raise ConfigurationError(
            f"output offset {off} beyond the last segment "
            f"({self.segments[-1].max_offset_codes}); guard window mismatch"
        )

    def losses_for_outputs(self, codes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`loss_for_output` over an array of codes.

        Backs the pipeline's batched charging path: one ``searchsorted``
        over the segment boundaries instead of a Python loop per code.
        """
        codes = np.asarray(codes, dtype=np.int64)
        offsets = np.where(
            codes > self.k_M,
            codes - self.k_M,
            np.where(codes < self.k_m, self.k_m - codes, 0),
        )
        bounds = np.array([s.max_offset_codes for s in self.segments], dtype=np.int64)
        losses = np.array([s.loss for s in self.segments], dtype=float)
        idx = np.searchsorted(bounds, offsets, side="left")
        if np.any(idx >= bounds.shape[0]):
            bad = int(offsets[idx >= bounds.shape[0]].max())
            raise ConfigurationError(
                f"output offset {bad} beyond the last segment "
                f"({self.segments[-1].max_offset_codes}); guard window mismatch"
            )
        return losses[idx]

    @property
    def base_loss(self) -> float:
        """The in-range charge ε_RNG (the first segment's loss)."""
        return self.segments[0].loss

    def describe(self, delta: float) -> List[str]:
        """Fig.-8-style rows: offset interval (real units) → loss."""
        rows = []
        prev = -1
        for seg in self.segments:
            lo = (prev + 1) * delta
            hi = seg.max_offset_codes * delta
            rows.append(f"offset ({lo:.4g}, {hi:.4g}] beyond range -> loss {seg.loss:.4g}")
            prev = seg.max_offset_codes
        return rows


def build_segment_table(
    family: DiscreteMechanismFamily,
    epsilon: float,
    levels: Sequence[float],
) -> SegmentTable:
    """Derive the exact segment table from a mechanism family.

    Parameters
    ----------
    family:
        The guarded mechanism's conditional distributions (the output
        window must be the guard window).
    epsilon:
        Base privacy parameter; levels are multiples of it.
    levels:
        Ascending loss levels, e.g. ``(1.0, 1.5, 2.0)``.  The last level
        must cover the whole window (i.e. be >= the calibrated loss
        multiple), otherwise construction fails.

    Returns
    -------
    SegmentTable
        First segment: the in-range region, charged its exact worst loss
        (ε_RNG, capped by ``levels[0]·ε``).  Subsequent segments: the
        largest offsets achieving each level.
    """
    levels = [float(l) for l in levels]
    if levels != sorted(levels) or not levels:
        raise ConfigurationError("levels must be a nonempty ascending sequence")
    profile = family.loss_profile()
    codes = family.output_codes
    k_m = int(family.input_codes.min())
    k_M = int(family.input_codes.max())
    # Worst loss at each offset (symmetric: both sides pooled).
    offsets = np.where(
        codes > k_M, codes - k_M, np.where(codes < k_m, k_m - codes, 0)
    )
    max_off = int(offsets.max())
    worst_at_offset = np.full(max_off + 1, -np.inf)
    for off in range(max_off + 1):
        vals = profile[offsets == off]
        vals = vals[~np.isnan(vals)]
        if vals.size:
            worst_at_offset[off] = vals.max()
    # Cumulative worst loss up to each offset (what a segment charges).
    cum_worst = np.maximum.accumulate(worst_at_offset)

    # The in-range segment is always charged its exact worst loss ε_RNG
    # (slightly above ε due to quantization); levels below it are skipped.
    base_loss = float(cum_worst[0])
    segments = [Segment(max_offset_codes=0, loss=base_loss)]
    for level in levels:
        # dplint: allow[DPL008] -- float-comparison guard band on the
        # level bound, not budget arithmetic: the 1e-12 only absorbs
        # accumulation error in cum_worst so a level exactly at k·ε is
        # not dropped; the charged loss itself comes from cum_worst.
        bound = level * epsilon + 1e-12
        ok = np.flatnonzero(cum_worst <= bound)
        if ok.size == 0:
            continue
        off = int(ok[-1])
        if off <= segments[-1].max_offset_codes:
            continue  # level adds no new reach
        segments.append(Segment(max_offset_codes=off, loss=float(cum_worst[off])))
    if segments[-1].max_offset_codes < max_off:
        raise ConfigurationError(
            "segment levels do not cover the guard window; the last level "
            "must be >= the guard's calibrated loss multiple"
        )
    return SegmentTable(k_m=k_m, k_M=k_M, segments=tuple(segments))
