"""Multi-core sharded fleet execution.

Splits a fleet epoch across worker processes without giving up the
repo's headline invariant — determinism.  The device axis is cut into a
fixed number of shards (:mod:`repro.parallel.sharding`), each shard owns
an independent audited noise stream spawned from the fleet seed via
``numpy.random.SeedSequence.spawn`` (:mod:`repro.rng.urng`), and each
worker privatizes its slice through a private
:class:`~repro.runtime.ReleasePipeline` (:mod:`repro.parallel.worker`).
The coordinator (:mod:`repro.parallel.runner`) merges shard outputs in
shard order, so the result is **bit-identical** for any worker count —
the shard plan, not the pool size, fixes the noise streams.

Two layers ride on top:

* the zero-copy shared-memory data plane (:mod:`repro.parallel.shm`) —
  array payloads live in named ``multiprocessing.shared_memory`` blocks
  and only block names + slice metadata cross the pool pipe; and
* the adaptive planner (:mod:`repro.parallel.planner`) —
  :func:`~repro.parallel.planner.plan_execution` picks serial-vs-pool
  and the worker count from host probes while the shard count (the
  reproducibility key) stays caller-fixed.
"""

from .categorical import (
    CategoricalFleetResult,
    CategoricalShardResult,
    CategoricalShardShm,
    CategoricalShardTask,
    run_categorical_shard,
    run_fleet_categorical,
)
from .planner import ExecutionPlan, calibrate_throughput, plan_execution
from .sharding import DEFAULT_SHARDS, ShardPlan, clamp_workers, plan_shards
from .shm import ShmArena, ShmArrayRef, attach_array, detach_all
from .worker import CodebookShipment, ShardResult, ShardShm, ShardTask, run_shard
from .runner import measure_ipc_bytes, plan_trace_event, run_fleet_sharded

__all__ = [
    "DEFAULT_SHARDS",
    "ShardPlan",
    "plan_shards",
    "clamp_workers",
    "ExecutionPlan",
    "plan_execution",
    "calibrate_throughput",
    "ShmArena",
    "ShmArrayRef",
    "attach_array",
    "detach_all",
    "CodebookShipment",
    "ShardShm",
    "ShardTask",
    "ShardResult",
    "run_shard",
    "run_fleet_sharded",
    "measure_ipc_bytes",
    "plan_trace_event",
    "CategoricalFleetResult",
    "CategoricalShardShm",
    "CategoricalShardTask",
    "CategoricalShardResult",
    "run_categorical_shard",
    "run_fleet_categorical",
]
