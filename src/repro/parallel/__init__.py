"""Multi-core sharded fleet execution.

Splits a fleet epoch across worker processes without giving up the
repo's headline invariant — determinism.  The device axis is cut into a
fixed number of shards (:mod:`repro.parallel.sharding`), each shard owns
an independent audited noise stream spawned from the fleet seed via
``numpy.random.SeedSequence.spawn`` (:mod:`repro.rng.urng`), and each
worker privatizes its slice through a private
:class:`~repro.runtime.ReleasePipeline` (:mod:`repro.parallel.worker`).
The coordinator (:mod:`repro.parallel.runner`) merges shard outputs in
shard order, so the result is **bit-identical** for any worker count —
the shard plan, not the pool size, fixes the noise streams.
"""

from .categorical import (
    CategoricalFleetResult,
    CategoricalShardResult,
    CategoricalShardTask,
    run_categorical_shard,
    run_fleet_categorical,
)
from .sharding import DEFAULT_SHARDS, ShardPlan, plan_shards
from .worker import CodebookShipment, ShardResult, ShardTask, run_shard
from .runner import run_fleet_sharded

__all__ = [
    "DEFAULT_SHARDS",
    "ShardPlan",
    "plan_shards",
    "CodebookShipment",
    "ShardTask",
    "ShardResult",
    "run_shard",
    "run_fleet_sharded",
    "CategoricalFleetResult",
    "CategoricalShardTask",
    "CategoricalShardResult",
    "run_categorical_shard",
    "run_fleet_categorical",
]
