"""Zero-copy shared-memory data plane for the sharded fleet.

The pickle transport ships every shard's epoch matrices through the pool
pipe twice (task out, result back) — at 50k devices that is tens of
megabytes of serialization per run, which is why the recorded 2-worker
benchmark *lost* to single-core.  This module replaces the payload with
names: the coordinator copies each shard's input slices into named
:class:`multiprocessing.shared_memory.SharedMemory` blocks once, workers
attach by name and write their outputs into coordinator-allocated result
buffers, and only O(1) metadata (block names, shapes, offsets) plus the
small trace artifacts cross the pipe.

Two pieces:

:class:`ShmArrayRef`
    A picklable ndarray handle — ``(block name, shape, dtype, byte
    offset)``.  ``sub()`` derives views into a packed block, which is
    how one block carries every shard's slice (or every shard's output
    region) without one-block-per-array proliferation.

:class:`ShmArena`
    The owner of the blocks and the single place that unlinks them.
    The coordinator creates an arena per run inside ``try/finally`` (so
    a worker crash — including ``BrokenProcessPool`` — still unlinks
    every block) and a :func:`weakref.finalize` backstop covers paths
    that never reach the ``finally``.  The finalizer is pid-guarded:
    forked pool workers inherit the arena object, and *their* interpreter
    shutdown must never unlink blocks the coordinator still owns.

Lifecycle note (POSIX semantics): ``unlink`` removes the *name*; live
mappings stay valid until closed.  The arena therefore keeps its own
handles open until :meth:`ShmArena.close`, and the coordinator copies
anything it must retain past ``close()`` (retain-mode server batches —
see ``donate=`` on :meth:`~repro.aggregation.server.AggregationServer.submit_array`).

Determinism note: block *names* are chosen by the stdlib (``name=None``),
not by this module — no randomness originates here, and names never feed
seed material; they are transport addresses only.
"""

from __future__ import annotations

import dataclasses
import os
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ShmArrayRef", "ShmArena", "attach_array", "detach_all"]

#: Byte alignment for arrays packed into one block; 16 covers every
#: numpy scalar dtype and keeps gathers on natural boundaries.
_ALIGN = 16


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclasses.dataclass(frozen=True)
class ShmArrayRef:
    """Picklable handle to an ndarray inside a named shared-memory block."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def sub(self, offset_elements: int, shape: Tuple[int, ...]) -> "ShmArrayRef":
        """A sub-array ref ``offset_elements`` into this ref's data."""
        itemsize = np.dtype(self.dtype).itemsize
        return ShmArrayRef(
            name=self.name,
            shape=tuple(int(s) for s in shape),
            dtype=self.dtype,
            offset=self.offset + int(offset_elements) * itemsize,
        )

    def attach(self) -> np.ndarray:
        """Materialize the array in this process (see :func:`attach_array`)."""
        return attach_array(self)


# Process-local attached handles, keyed by block name.  Workers attach
# each block once per process regardless of how many refs point into it;
# the creating process resolves refs against the arena's own handles and
# never goes through this table.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_array(ref: ShmArrayRef) -> np.ndarray:
    """Attach ``ref``'s block by name and return the ndarray view.

    Tracker note: on CPython 3.11 an attach *also* registers the segment
    with the ``resource_tracker``.  That is harmless here — pool workers
    inherit the coordinator's tracker (fork and spawn both), whose cache
    is a set, so the re-registration is a no-op and the single
    unregister at arena unlink leaves the tracker clean.  Do NOT
    unregister on attach: with a shared tracker that would strip the
    *creator's* registration and the unlink-time unregister would fail.
    """
    handle = _ATTACHED.get(ref.name)
    if handle is None:
        handle = shared_memory.SharedMemory(name=ref.name)
        _ATTACHED[ref.name] = handle
    return np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=handle.buf, offset=ref.offset
    )


def detach_all() -> None:
    """Close every block this process attached by name (worker hygiene)."""
    while _ATTACHED:
        _, handle = _ATTACHED.popitem()
        try:
            handle.close()
        except BufferError:  # pragma: no cover - a live view pins the mapping
            pass


def _unlink_blocks(blocks: List[shared_memory.SharedMemory], owner_pid: int) -> None:
    """Finalizer body: close+unlink every block — in the owner only.

    Module-level (not a bound method) so :func:`weakref.finalize` holds
    no reference back to the arena, and pid-guarded so a forked worker's
    interpreter shutdown cannot unlink the coordinator's live blocks.
    """
    if os.getpid() != owner_pid:
        blocks.clear()
        return
    while blocks:
        block = blocks.pop()
        try:
            block.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class ShmArena:
    """Owns a run's shared-memory blocks; guarantees they are unlinked.

    Usable as a context manager; :meth:`close` is idempotent and also
    runs from a :func:`weakref.finalize` backstop if the arena is
    dropped without reaching the ``finally``.
    """

    def __init__(self) -> None:
        self._blocks: List[shared_memory.SharedMemory] = []
        self._owner_pid = os.getpid()
        self._finalizer = weakref.finalize(
            self, _unlink_blocks, self._blocks, self._owner_pid
        )

    # -- allocation ----------------------------------------------------
    def allocate(self, shape: Sequence[int], dtype) -> ShmArrayRef:
        """Create one zero-initialized block holding an array of ``shape``."""
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        nbytes = max(int(np.prod(shape, dtype=np.int64)) * dt.itemsize, 1)
        # Freshly created segments are zero pages (ftruncate semantics),
        # so no explicit memset pass is needed — or wanted, at 500k
        # devices that would be a full write over the buffer.
        block = shared_memory.SharedMemory(create=True, size=nbytes)
        self._blocks.append(block)
        return ShmArrayRef(name=block.name, shape=shape, dtype=dt.str)

    def share(self, array: np.ndarray) -> ShmArrayRef:
        """Copy ``array`` into a new block and return its ref."""
        array = np.ascontiguousarray(array)
        ref = self.allocate(array.shape, array.dtype)
        self.view(ref)[...] = array
        return ref

    def pack(self, arrays: Sequence[np.ndarray]) -> List[ShmArrayRef]:
        """Copy several arrays into ONE block; one ref per array.

        This is how the coordinator ships all shards' input slices in a
        single segment: one block for every shard's truth slice, one for
        every reporting slice, instead of blocks × shards.
        """
        arrays = [np.ascontiguousarray(a) for a in arrays]
        offsets: List[int] = []
        total = 0
        for a in arrays:
            offsets.append(total)
            total += _aligned(max(a.nbytes, 1))
        block = shared_memory.SharedMemory(create=True, size=max(total, 1))
        self._blocks.append(block)
        refs: List[ShmArrayRef] = []
        for a, off in zip(arrays, offsets):
            ref = ShmArrayRef(
                name=block.name, shape=a.shape, dtype=a.dtype.str, offset=off
            )
            self.view(ref)[...] = a
            refs.append(ref)
        return refs

    # -- access --------------------------------------------------------
    def view(self, ref: ShmArrayRef) -> np.ndarray:
        """An ndarray over one of *this arena's* blocks (creator side)."""
        for block in self._blocks:
            if block.name == ref.name:
                return np.ndarray(
                    ref.shape,
                    dtype=np.dtype(ref.dtype),
                    buffer=block.buf,
                    offset=ref.offset,
                )
        raise KeyError(f"block {ref.name!r} is not owned by this arena")

    @property
    def block_names(self) -> List[str]:
        """Names of the blocks currently owned (for leak assertions)."""
        return [block.name for block in self._blocks]

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive and not self._blocks

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close and unlink every owned block.  Idempotent."""
        # detach() via the finalizer so close() and the GC/atexit backstop
        # share one code path (the finalizer runs at most once).
        self._finalizer()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
