"""Deterministic device-axis shard plans.

A :class:`ShardPlan` cuts ``n_devices`` into contiguous, balanced
slices.  The plan is a pure function of ``(n_devices, shards)`` — it
never looks at the worker count — which is the root of the sharded
runner's determinism guarantee: a fleet run executed by 1, 2 or 4
workers over the *same* plan consumes the *same* per-shard noise
streams and is therefore bit-identical.  Changing ``shards`` changes
the streams (each shard seeds its own spawned
:class:`~numpy.random.SeedSequence`), so the shard count is part of the
run's reproducibility key, exactly like the fleet seed.
"""

from __future__ import annotations

import dataclasses
import logging
import os
from typing import List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["DEFAULT_SHARDS", "ShardPlan", "plan_shards", "clamp_workers"]

_log = logging.getLogger(__name__)

#: Default shard count.  Fixed (not ``os.cpu_count()``!) so the default
#: plan — and with it the noise streams — is identical on every machine;
#: 8 shards keep pools of up to 8 workers busy and cost nothing beyond
#: that (idle shards just queue).
DEFAULT_SHARDS = 8


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Contiguous balanced partition of the device axis."""

    n_devices: int
    #: Shard boundaries: shard ``s`` owns devices ``[offsets[s], offsets[s+1])``.
    offsets: Tuple[int, ...]
    #: Validated/clamped pool size, when the caller asked ``plan_shards``
    #: to vet one.  Scheduling metadata only — results never depend on it
    #: (that is the bit-identity guarantee); it is deliberately NOT part
    #: of the reproducibility key the way ``offsets`` is.
    workers: Optional[int] = None

    @property
    def n_shards(self) -> int:
        return len(self.offsets) - 1

    @property
    def slices(self) -> List[Tuple[int, int]]:
        """Per-shard ``(start, stop)`` device index ranges."""
        return [
            (self.offsets[s], self.offsets[s + 1]) for s in range(self.n_shards)
        ]

    def shard_of(self, device_index: int) -> int:
        """The shard owning a global device index."""
        if not 0 <= device_index < self.n_devices:
            raise ConfigurationError(
                f"device index {device_index} outside [0, {self.n_devices})"
            )
        for s, (start, stop) in enumerate(self.slices):
            if start <= device_index < stop:
                return s
        raise ConfigurationError(f"no shard owns device {device_index}")


def clamp_workers(workers: int) -> int:
    """Validate a requested pool size and clamp it to the host's cores.

    ``workers < 1`` is a configuration error; asking for more workers
    than ``os.cpu_count()`` is clamped with a logged warning instead of
    silently oversubscribing the pool (an oversubscribed pool *slows*
    the run — every extra process pays serialization and scheduler cost
    for zero parallelism).  The clamp affects scheduling only, never
    results: worker count is outside the reproducibility key.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    available = os.cpu_count() or 1
    if workers > available:
        _log.warning(
            "requested %d workers but only %d cores are available; "
            "clamping the pool to %d (results are unaffected: worker "
            "count is not part of the reproducibility key)",
            workers,
            available,
            available,
        )
        return available
    return workers


def plan_shards(
    n_devices: int, shards: int = None, workers: Optional[int] = None
) -> ShardPlan:
    """Build the balanced plan for ``n_devices`` across ``shards`` slices.

    ``shards`` defaults to :data:`DEFAULT_SHARDS` and is clamped to
    ``n_devices`` so no shard is empty.  Shard sizes differ by at most
    one device (``i * n // s`` boundaries).

    ``workers``, when given, is validated and clamped via
    :func:`clamp_workers` and recorded on the plan.  It never shapes the
    partition: ``offsets`` stays a pure function of
    ``(n_devices, shards)``, which is the determinism guarantee.
    """
    if n_devices < 1:
        raise ConfigurationError("n_devices must be >= 1")
    s = DEFAULT_SHARDS if shards is None else shards
    if s < 1:
        raise ConfigurationError("shards must be >= 1")
    s = min(s, n_devices)
    offsets = tuple(i * n_devices // s for i in range(s + 1))
    vetted = None if workers is None else clamp_workers(workers)
    return ShardPlan(n_devices=n_devices, offsets=offsets, workers=vetted)
