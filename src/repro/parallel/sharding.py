"""Deterministic device-axis shard plans.

A :class:`ShardPlan` cuts ``n_devices`` into contiguous, balanced
slices.  The plan is a pure function of ``(n_devices, shards)`` — it
never looks at the worker count — which is the root of the sharded
runner's determinism guarantee: a fleet run executed by 1, 2 or 4
workers over the *same* plan consumes the *same* per-shard noise
streams and is therefore bit-identical.  Changing ``shards`` changes
the streams (each shard seeds its own spawned
:class:`~numpy.random.SeedSequence`), so the shard count is part of the
run's reproducibility key, exactly like the fleet seed.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..errors import ConfigurationError

__all__ = ["DEFAULT_SHARDS", "ShardPlan", "plan_shards"]

#: Default shard count.  Fixed (not ``os.cpu_count()``!) so the default
#: plan — and with it the noise streams — is identical on every machine;
#: 8 shards keep pools of up to 8 workers busy and cost nothing beyond
#: that (idle shards just queue).
DEFAULT_SHARDS = 8


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Contiguous balanced partition of the device axis."""

    n_devices: int
    #: Shard boundaries: shard ``s`` owns devices ``[offsets[s], offsets[s+1])``.
    offsets: Tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.offsets) - 1

    @property
    def slices(self) -> List[Tuple[int, int]]:
        """Per-shard ``(start, stop)`` device index ranges."""
        return [
            (self.offsets[s], self.offsets[s + 1]) for s in range(self.n_shards)
        ]

    def shard_of(self, device_index: int) -> int:
        """The shard owning a global device index."""
        if not 0 <= device_index < self.n_devices:
            raise ConfigurationError(
                f"device index {device_index} outside [0, {self.n_devices})"
            )
        for s, (start, stop) in enumerate(self.slices):
            if start <= device_index < stop:
                return s
        raise ConfigurationError(f"no shard owns device {device_index}")


def plan_shards(n_devices: int, shards: int = None) -> ShardPlan:
    """Build the balanced plan for ``n_devices`` across ``shards`` slices.

    ``shards`` defaults to :data:`DEFAULT_SHARDS` and is clamped to
    ``n_devices`` so no shard is empty.  Shard sizes differ by at most
    one device (``i * n // s`` boundaries).
    """
    if n_devices < 1:
        raise ConfigurationError("n_devices must be >= 1")
    s = DEFAULT_SHARDS if shards is None else shards
    if s < 1:
        raise ConfigurationError("shards must be >= 1")
    s = min(s, n_devices)
    offsets = tuple(i * n_devices // s for i in range(s + 1))
    return ShardPlan(n_devices=n_devices, offsets=offsets)
