"""Adaptive execution planning: choose *scheduling*, never *streams*.

:func:`plan_execution` sits above :func:`~repro.parallel.sharding.plan_shards`
and decides how a fleet run should be scheduled — inline on one core, or
across a process pool, and with how many workers.  It probes the host
(``os.cpu_count()``) and a cached micro-benchmark calibration of this
machine's vectorized-release throughput to place the serial-vs-pool
cutover where the pool actually pays for its startup cost.

The reproducibility contract is strict and worth spelling out:

* The **shard count** — and with it the ``SeedSequence.spawn`` layout,
  i.e. every noise stream — is part of the run's reproducibility key.
  It comes from the caller (or :data:`~repro.parallel.sharding.DEFAULT_SHARDS`)
  and this module passes it through *untouched*.  No host probe ever
  flows into it.
* The **worker count** and the serial/pool decision are free: they may
  differ per host, per load, per calibration — and the run is
  bit-identical regardless, because workers only schedule shards whose
  streams are already fixed.  (dplint's DPL007 enforces the boundary:
  ``os.cpu_count``/wall-clock taint must never reach seed material or
  ``shards=``.)

So two machines disagree about *how fast* a run executes, never about
*what* it releases.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .sharding import ShardPlan, clamp_workers, plan_shards

__all__ = ["ExecutionPlan", "plan_execution", "calibrate_throughput"]

#: Fixed cost a process pool must amortize before it can win: worker
#: spawn, codebook shipping, pipe setup.  Deliberately a constant, not a
#: measurement — it only places the cutover, and a constant keeps the
#: planner's behaviour explainable.
_POOL_OVERHEAD_S = 0.35

#: The pool must promise at least this serial runtime before we pay the
#: overhead (i.e. cutover where even a perfect 2× split breaks even).
_MIN_SERIAL_FOR_POOL_S = 4.0 * _POOL_OVERHEAD_S

#: Cached calibration: vectorized release-path throughput, elements/s.
_calibrated: Optional[float] = None


def calibrate_throughput(force: bool = False) -> float:
    """Measure (once, cached) this host's vectorized release throughput.

    The probe mirrors the per-element shape of the codebook release
    path — a table gather, a signed add, an in-place clip — over a
    buffer big enough to leave the cache hierarchy honest.  The result
    feeds *only* the serial-vs-pool cutover; it never touches seed
    material (see the module docstring's reproducibility contract).
    """
    global _calibrated
    if _calibrated is not None and not force:
        return _calibrated
    n = 1 << 18
    table = np.arange(1 << 12, dtype=np.int32)
    m = np.arange(n, dtype=np.int64) % table.size
    codes = np.arange(n, dtype=np.int64)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        k = table[m].astype(np.int64)
        k += codes
        np.clip(k, -2048, 2048, out=k)
        best = min(best, time.perf_counter() - t0)
    _calibrated = n / max(best, 1e-9)
    return _calibrated


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """A scheduling decision over a fixed :class:`ShardPlan`.

    ``shards`` is reproducibility key material (caller-fixed); ``workers``
    and ``mode`` are scheduling only.
    """

    shards: int
    workers: int
    mode: str
    """``"serial"`` (inline, no pool) or ``"pool"``."""
    reason: str
    """Human-readable why — echoed into the run's trace metadata."""
    estimated_serial_s: Optional[float] = None

    def describe(self) -> str:
        """Compact plan label, e.g. ``pool:2/8shards`` or ``serial/8shards``."""
        if self.mode == "serial":
            return f"serial/{self.shards}shards"
        return f"pool:{self.workers}/{self.shards}shards"


def plan_execution(
    n_devices: int,
    n_epochs: int,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
) -> ExecutionPlan:
    """Choose serial-vs-pool and a worker count for one fleet run.

    ``shards`` (reproducibility key) passes straight through to
    :func:`plan_shards`.  ``workers`` forces the pool size (validated and
    clamped via :func:`~repro.parallel.sharding.clamp_workers`); ``None``
    lets the planner probe ``os.cpu_count()`` and the cached calibration:
    single-core hosts and runs too small to amortize pool startup stay
    serial, everything else gets ``min(cores, shards)`` workers.
    """
    if n_epochs < 1:
        raise ConfigurationError("n_epochs must be >= 1")
    shard_plan: ShardPlan = plan_shards(n_devices, shards)
    n_shards = shard_plan.n_shards

    if workers is not None:
        vetted = clamp_workers(workers)
        if vetted == 1:
            return ExecutionPlan(
                shards=n_shards,
                workers=1,
                mode="serial",
                reason="caller pinned workers=1",
            )
        return ExecutionPlan(
            shards=n_shards,
            workers=min(vetted, n_shards),
            mode="pool",
            reason=f"caller pinned workers={workers}",
        )

    cores = os.cpu_count() or 1
    if cores < 2:
        return ExecutionPlan(
            shards=n_shards,
            workers=1,
            mode="serial",
            reason="single-core host: a pool only adds IPC overhead",
        )
    throughput = calibrate_throughput()
    # ~10 release-shaped passes per element per epoch end to end (draw,
    # sign, add, guard, decode, fold) — a deliberately rough constant;
    # the cutover only needs the right order of magnitude.
    est_serial = 10.0 * float(n_devices) * float(n_epochs) / throughput
    if est_serial < _MIN_SERIAL_FOR_POOL_S:
        return ExecutionPlan(
            shards=n_shards,
            workers=1,
            mode="serial",
            reason=(
                f"run too small to amortize pool startup "
                f"(~{est_serial:.2f}s serial < {_MIN_SERIAL_FOR_POOL_S:.2f}s cutover)"
            ),
            estimated_serial_s=est_serial,
        )
    return ExecutionPlan(
        shards=n_shards,
        workers=min(cores, n_shards),
        mode="pool",
        reason=(
            f"~{est_serial:.2f}s estimated serial on {cores} cores "
            f"clears the {_MIN_SERIAL_FOR_POOL_S:.2f}s pool cutover"
        ),
        estimated_serial_s=est_serial,
    )
