"""The coordinator: plan shards, run them, merge — deterministically.

:func:`run_fleet_sharded` is the multi-core counterpart of
:func:`repro.aggregation.fleet.run_fleet`'s batched path.  The contract:

* **Determinism across worker counts.**  The shard plan and the
  per-shard noise streams (``SeedSequence.spawn`` sub-seeds of the fleet
  seed) depend only on ``(n_devices, shards, source_seed)`` — never on
  ``workers``.  A run with ``workers=4`` is bit-identical to
  ``workers=1`` for the single-draw guards (thresholding / baseline /
  rr); resampling agrees in distribution (its redraw interleaving is
  batch-shaped, as in the unsharded fleet).
* **Bridge to the legacy path.**  ``shards=1`` uses the *root* seed
  sequence (no spawn), so its single shard consumes exactly the stream
  ``run_fleet(batched=True, source_seed=...)`` consumes — bit-identical
  to the unsharded fleet, event channels included.
* **Coordinator-owned simulation randomness.**  Dropout masks are drawn
  here with the same generator call pattern as the unsharded fleet, then
  shipped to the workers; workers consume only their audited stream.
* **Shard-ordered merge.**  Server submissions, trace events
  (re-numbered through :meth:`~repro.runtime.ReleasePipeline.adopt`),
  counter aggregates and per-device budget state all fold in shard
  order, so every merged artifact is reproducible.

Note on traces: in a sharded run each ``ReleaseEvent`` is per
(epoch, shard) — channel ``epoch-E/shard-S`` — and its
``budget_remaining`` is the *shard's* remaining budget sum, not the
fleet's (each worker only sees its slice).  Fleet-wide budget state
lives on the returned devices, as in the unsharded path.
"""

from __future__ import annotations

import concurrent.futures
import functools
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms import SensorSpec, make_mechanism
from ..rng.codebook import backend_fingerprint, codebook_cache
from ..rng.urng import shard_seed_sequences
from ..runtime import CounterSink
from ..runtime.pipeline import ReleasePipeline, default_pipeline
from .sharding import ShardPlan, plan_shards
from .worker import CodebookShipment, ShardResult, ShardTask, install_shipments, run_shard

__all__ = ["run_fleet_sharded"]


def _shippable(fingerprint) -> bool:
    # Identity-keyed fingerprints (unknown backends) cannot be shared
    # across processes — the worker-side unpickled instance has a new
    # id, so the worker rebuilds its table (deterministically) instead.
    return not (len(fingerprint) == 3 and fingerprint[1] == "id")


def _codebook_shipments(mechanism) -> List[CodebookShipment]:
    """Extract the coordinator's resolved codebook for worker warm-up."""
    rng = getattr(mechanism, "rng", None)
    if rng is None or not hasattr(rng, "kernel"):
        return []
    if rng.kernel != "codebook":
        return []
    entry = codebook_cache().peek(rng.config, rng.log_backend)
    fingerprint = backend_fingerprint(rng.log_backend)
    if entry is None or not _shippable(fingerprint):
        return []
    return [
        CodebookShipment(
            config=rng.config, fingerprint=fingerprint, table=entry.table
        )
    ]


def run_fleet_sharded(
    true_values: np.ndarray,
    sensor: SensorSpec,
    epsilon: float,
    arm: str = "thresholding",
    device_budget: Optional[float] = None,
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    source_seed=None,
    pipeline: Optional[ReleasePipeline] = None,
    workers: int = 1,
    shards: Optional[int] = None,
    streaming: bool = False,
    count_thresholds: Sequence[float] = (),
    with_devices: bool = True,
    **mechanism_kwargs,
):
    """Run a fleet epoch matrix sharded across worker processes.

    Parameters beyond :func:`~repro.aggregation.fleet.run_fleet`:

    ``workers``
        Process count.  ``1`` runs the shards inline (no pool) — same
        results, no multiprocessing overhead.
    ``shards``
        Shard count (default :data:`~repro.parallel.sharding.DEFAULT_SHARDS`,
        clamped to ``n_devices``).  Part of the reproducibility key.
    ``streaming``
        Build the server with ``streaming=True``: shard batches fold
        into per-epoch running moments, O(epochs) server memory.
    ``count_thresholds``
        Thresholds whose count-above counters a streaming server keeps.
    ``with_devices``
        ``False`` skips materializing per-device ``Device`` objects
        (the 50k-device benchmark path); the result's ``devices`` list
        is then empty.  Budget enforcement is unaffected — it is
        vectorized in the workers either way.
    """
    from ..aggregation.device import Device
    from ..aggregation.fleet import FleetResult
    from ..aggregation.server import AggregationServer

    true_values = np.asarray(true_values, dtype=float)
    if true_values.ndim != 2:
        raise ConfigurationError("true_values must be (n_epochs, n_devices)")
    if not 0.0 <= dropout < 1.0:
        raise ConfigurationError("dropout must be in [0, 1)")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    for forbidden in ("source", "rng", "pipeline"):
        if forbidden in mechanism_kwargs:
            raise ConfigurationError(
                f"run_fleet_sharded derives {forbidden!r} per shard; pass "
                "source_seed/pipeline instead of a shared instance"
            )
    # dplint: allow[DPL001] -- dropout/straggler simulation randomness only;
    # release noise comes from the per-shard audited sources.
    rng = rng or np.random.default_rng()
    n_epochs, n_devices = true_values.shape
    plan: ShardPlan = plan_shards(n_devices, shards)

    # Coordinator reference mechanism: validates the configuration once,
    # provides the loss bound, the devices' shared mechanism handle, and
    # the codebook table to ship.  It consumes no noise (never released).
    ref_kwargs = dict(mechanism_kwargs)
    if arm != "ideal":
        ref_kwargs.setdefault("input_bits", 14)
    reference = make_mechanism(arm, sensor, epsilon, **ref_kwargs)
    loss = reference.claimed_loss_bound
    shipments = _codebook_shipments(reference)

    # All simulation randomness is drawn here, with the exact call
    # pattern of the unsharded fleet (one `random(n)` per epoch, plus
    # one `integers(n)` on an all-straggler epoch), so a given `rng`
    # seed yields the same reporting sets sharded or not.
    reporting = np.empty((n_epochs, n_devices), dtype=bool)
    for epoch in range(n_epochs):
        mask = rng.random(n_devices) >= dropout
        if not mask.any():
            mask[int(rng.integers(n_devices))] = True  # never a silent epoch
        reporting[epoch] = mask

    seqs = shard_seed_sequences(source_seed, plan.n_shards)
    tasks = [
        ShardTask(
            shard_index=s,
            n_shards=plan.n_shards,
            start=start,
            arm=arm,
            sensor=sensor,
            epsilon=epsilon,
            seed_seq=seqs[s],
            truth=np.ascontiguousarray(true_values[:, start:stop]),
            reporting=np.ascontiguousarray(reporting[:, start:stop]),
            device_budget=device_budget,
            mechanism_kwargs=dict(mechanism_kwargs),
        )
        for s, (start, stop) in enumerate(plan.slices)
    ]

    if workers == 1:
        results: List[ShardResult] = [run_shard(t) for t in tasks]
    else:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, plan.n_shards),
            initializer=install_shipments,
            initargs=(shipments,),
        ) as pool:
            # map() yields in shard order, so a failing shard surfaces
            # deterministically (lowest shard index first).
            results = list(pool.map(run_shard, tasks))

    # ---- merge, in shard order ------------------------------------------
    lam = sensor.d / epsilon if arm != "rr" else None
    server = AggregationServer(
        noise_scale=lam, streaming=streaming, count_thresholds=count_thresholds
    )
    for epoch in range(n_epochs):
        for result in results:
            values = result.values_by_epoch[epoch]
            if values.size == 0:
                continue
            if streaming:
                server.submit_array(epoch, values, loss)
            else:
                start, stop = plan.slices[result.shard_index]
                idx = start + np.flatnonzero(reporting[epoch, start:stop])
                server.submit_array(
                    epoch,
                    values,
                    loss,
                    device_ids=[f"dev-{i:04d}" for i in idx],
                )
    if streaming:
        # The composition bound, recorded in bulk: every report claims
        # the same per-release loss, and the report count per device is
        # fixed by the coordinator-drawn masks.
        counts = reporting.sum(axis=0)
        server.record_claimed_losses(
            {
                f"dev-{i:04d}": float(counts[i]) * loss
                for i in np.flatnonzero(counts)
            }
        )

    target_pipeline = pipeline if pipeline is not None else default_pipeline()
    for result in results:
        target_pipeline.adopt(result.events)
    counters = functools.reduce(
        CounterSink.merge, (r.counter for r in results), CounterSink()
    )

    devices: List[Device] = []
    if with_devices:
        devices = [
            Device(f"dev-{i:04d}", reference, budget=device_budget)
            for i in range(n_devices)
        ]
        for result in results:
            start = result.start
            for j in range(result.n_fresh.shape[0]):
                dev = devices[start + j]
                dev.n_fresh = int(result.n_fresh[j])
                dev.n_cached = int(result.n_cached[j])
                if result.remaining is not None and dev._accountant is not None:
                    dev._accountant._spent = float(device_budget) - float(
                        result.remaining[j]
                    )
                if not np.isnan(result.cached_codes[j]):
                    dev._cache.code = result.cached_codes[j]

    true_means = [
        float(true_values[epoch, reporting[epoch]].mean())
        for epoch in range(n_epochs)
    ]
    estimated = [server.summarize(e).mean for e in server.epochs]
    return FleetResult(
        server=server,
        devices=devices,
        true_means=true_means,
        estimated_means=estimated,
        counters=counters,
        shard_plan=plan,
    )
