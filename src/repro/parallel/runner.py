"""The coordinator: plan shards, run them, merge — deterministically.

:func:`run_fleet_sharded` is the multi-core counterpart of
:func:`repro.aggregation.fleet.run_fleet`'s batched path.  The contract:

* **Determinism across worker counts.**  The shard plan and the
  per-shard noise streams (``SeedSequence.spawn`` sub-seeds of the fleet
  seed) depend only on ``(n_devices, shards, source_seed)`` — never on
  ``workers``.  A run with ``workers=4`` is bit-identical to
  ``workers=1`` for the single-draw guards (thresholding / baseline /
  rr); resampling agrees in distribution (its redraw interleaving is
  batch-shaped, as in the unsharded fleet).
* **Determinism across transports.**  The shared-memory data plane
  (``shm=True``, auto-enabled under a pool) only changes where bytes
  live; workers privatize the identical slices with the identical
  streams, so shm and pickle runs are bit-identical.
* **Bridge to the legacy path.**  ``shards=1`` uses the *root* seed
  sequence (no spawn), so its single shard consumes exactly the stream
  ``run_fleet(batched=True, source_seed=...)`` consumes — bit-identical
  to the unsharded fleet, event channels included.
* **Coordinator-owned simulation randomness.**  Dropout masks are drawn
  here with the same generator call pattern as the unsharded fleet, then
  shipped to the workers; workers consume only their audited stream.
* **Shard-ordered merge.**  Server submissions, trace events
  (re-numbered through :meth:`~repro.runtime.ReleasePipeline.adopt`),
  counter aggregates and per-device budget state all fold in shard
  order, so every merged artifact is reproducible.

Note on traces: in a sharded run each ``ReleaseEvent`` is per
(epoch, shard) — channel ``epoch-E/shard-S`` — and its
``budget_remaining`` is the *shard's* remaining budget sum, not the
fleet's (each worker only sees its slice).  Fleet-wide budget state
lives on the returned devices, as in the unsharded path.
"""

from __future__ import annotations

import concurrent.futures
import functools
import pickle
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms import SensorSpec, make_mechanism
from ..rng.codebook import backend_fingerprint, codebook_cache
from ..rng.urng import shard_seed_sequences
from ..runtime import CounterSink
from ..runtime.events import ReleaseEvent
from ..runtime.pipeline import ReleasePipeline, default_pipeline
from .planner import ExecutionPlan
from .sharding import ShardPlan, plan_shards
from .shm import ShmArena, detach_all
from .worker import (
    CodebookShipment,
    ShardResult,
    ShardShm,
    ShardTask,
    install_shipments,
    run_shard,
)

__all__ = ["run_fleet_sharded"]


def _shippable(fingerprint) -> bool:
    # Identity-keyed fingerprints (unknown backends) cannot be shared
    # across processes — the worker-side unpickled instance has a new
    # id, so the worker rebuilds its table (deterministically) instead.
    return not (len(fingerprint) == 3 and fingerprint[1] == "id")


def _codebook_shipments(mechanism) -> List[CodebookShipment]:
    """Extract the coordinator's resolved codebook for worker warm-up."""
    rng = getattr(mechanism, "rng", None)
    if rng is None or not hasattr(rng, "kernel"):
        return []
    if rng.kernel != "codebook":
        return []
    entry = codebook_cache().peek(rng.config, rng.log_backend)
    fingerprint = backend_fingerprint(rng.log_backend)
    if entry is None or not _shippable(fingerprint):
        return []
    return [
        CodebookShipment(
            config=rng.config, fingerprint=fingerprint, table=entry.table
        )
    ]


def measure_ipc_bytes(tasks: Sequence[object], results: Sequence[object]) -> int:
    """Pipe payload of a run: pickled task + result sizes, summed.

    This is exactly what ``ProcessPoolExecutor`` serializes per call, so
    it is the honest apples-to-apples metric for the pickle-vs-shm data
    planes (shm tasks pickle to block names + metadata).  Computed by
    re-pickling outside any timed region.
    """
    return sum(len(pickle.dumps(t)) for t in tasks) + sum(
        len(pickle.dumps(r)) for r in results
    )


def plan_trace_event(execution_plan: ExecutionPlan) -> ReleaseEvent:
    """The plan-echo event: scheduling metadata, visibly not a release.

    ``batch=0``/``draws=0`` and a ``plan/...`` channel make it inert for
    every counter that aggregates draws or batches; it exists so a trace
    records *how* the run was scheduled next to what it released.
    """
    return ReleaseEvent(
        seq=0,  # renumbered on adoption
        mechanism="execution-plan",
        epsilon=0.0,
        claimed_loss=0.0,
        guard="none",
        batch=0,
        draws=0,
        resample_rounds=0,
        max_rounds_used=0,
        channel=f"plan/{execution_plan.describe()}",
    )


def run_fleet_sharded(
    true_values: np.ndarray,
    sensor: SensorSpec,
    epsilon: float,
    arm: str = "thresholding",
    device_budget: Optional[float] = None,
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    source_seed=None,
    pipeline: Optional[ReleasePipeline] = None,
    workers: int = 1,
    shards: Optional[int] = None,
    streaming: bool = False,
    count_thresholds: Sequence[float] = (),
    with_devices: bool = True,
    shm: Optional[bool] = None,
    measure_ipc: bool = False,
    execution_plan: Optional[ExecutionPlan] = None,
    **mechanism_kwargs,
):
    """Run a fleet epoch matrix sharded across worker processes.

    Parameters beyond :func:`~repro.aggregation.fleet.run_fleet`:

    ``workers``
        Process count.  ``1`` runs the shards inline (no pool) — same
        results, no multiprocessing overhead.
    ``shards``
        Shard count (default :data:`~repro.parallel.sharding.DEFAULT_SHARDS`,
        clamped to ``n_devices``).  Part of the reproducibility key.
    ``streaming``
        Build the server with ``streaming=True``: shard batches fold
        into per-epoch running moments, O(epochs) server memory.
    ``count_thresholds``
        Thresholds whose count-above counters a streaming server keeps.
    ``with_devices``
        ``False`` skips materializing per-device ``Device`` objects
        (the 50k-device benchmark path); the result's ``devices`` list
        is then empty.  Budget enforcement is unaffected — it is
        vectorized in the workers either way.
    ``shm``
        Transport selector: ``True`` forces the zero-copy shared-memory
        data plane, ``False`` forces pickle, ``None`` (default) picks
        shm exactly when a pool is in play (``workers > 1``).  Results
        are bit-identical either way.
    ``measure_ipc``
        Compute the run's pipe payload (see :func:`measure_ipc_bytes`)
        onto the result's ``ipc_bytes``.  Costs an extra serialization
        pass; leave off in timed runs.
    ``execution_plan``
        A :class:`~repro.parallel.planner.ExecutionPlan` (usually from
        :func:`~repro.parallel.planner.plan_execution`).  Overrides
        ``workers`` (and ``shards`` when not explicitly given), and is
        echoed into the trace as an ``execution-plan`` event.
    """
    from ..aggregation.device import Device
    from ..aggregation.fleet import FleetResult
    from ..aggregation.server import AggregationServer

    if execution_plan is not None:
        workers = execution_plan.workers
        if shards is None:
            shards = execution_plan.shards

    true_values = np.asarray(true_values, dtype=float)
    if true_values.ndim != 2:
        raise ConfigurationError("true_values must be (n_epochs, n_devices)")
    if not 0.0 <= dropout < 1.0:
        raise ConfigurationError("dropout must be in [0, 1)")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    for forbidden in ("source", "rng", "pipeline"):
        if forbidden in mechanism_kwargs:
            raise ConfigurationError(
                f"run_fleet_sharded derives {forbidden!r} per shard; pass "
                "source_seed/pipeline instead of a shared instance"
            )
    # dplint: allow[DPL001] -- dropout/straggler simulation randomness only;
    # release noise comes from the per-shard audited sources.
    rng = rng or np.random.default_rng()
    n_epochs, n_devices = true_values.shape
    plan: ShardPlan = plan_shards(n_devices, shards)
    use_shm = (workers > 1) if shm is None else bool(shm)

    # Coordinator reference mechanism: validates the configuration once,
    # provides the loss bound, the devices' shared mechanism handle, and
    # the codebook table to ship.  It consumes no noise (never released).
    ref_kwargs = dict(mechanism_kwargs)
    if arm != "ideal":
        ref_kwargs.setdefault("input_bits", 14)
    reference = make_mechanism(arm, sensor, epsilon, **ref_kwargs)
    loss = reference.claimed_loss_bound
    shipments = _codebook_shipments(reference)

    # All simulation randomness is drawn here, with the exact call
    # pattern of the unsharded fleet (one `random(n)` per epoch, plus
    # one `integers(n)` on an all-straggler epoch), so a given `rng`
    # seed yields the same reporting sets sharded or not.
    reporting = np.empty((n_epochs, n_devices), dtype=bool)
    for epoch in range(n_epochs):
        mask = rng.random(n_devices) >= dropout
        if not mask.any():
            mask[int(rng.integers(n_devices))] = True  # never a silent epoch
        reporting[epoch] = mask

    seqs = shard_seed_sequences(source_seed, plan.n_shards)
    arena: Optional[ShmArena] = None
    ipc_bytes: Optional[int] = None
    try:
        if use_shm:
            arena = ShmArena()
            # One block per array kind, every shard's slice packed inside.
            truth_refs = arena.pack(
                [true_values[:, start:stop] for start, stop in plan.slices]
            )
            reporting_refs = arena.pack(
                [reporting[:, start:stop] for start, stop in plan.slices]
            )
            # Output layout is fully determined by the reporting masks the
            # coordinator just drew: shard s gets a flat region of
            # reporting[:, start:stop].sum() float64 slots, epochs in
            # order.  Workers recompute the same offsets from the same
            # masks — no size metadata needs to ride back.
            shard_report_counts = [
                reporting[:, start:stop].sum(axis=1).astype(np.int64)
                for start, stop in plan.slices
            ]
            shard_totals = [int(c.sum()) for c in shard_report_counts]
            values_ref = arena.allocate((max(sum(shard_totals), 1),), np.float64)
            shard_bases = np.concatenate([[0], np.cumsum(shard_totals)])
            n_fresh_ref = arena.allocate((n_devices,), np.int64)
            n_cached_ref = arena.allocate((n_devices,), np.int64)
            cached_codes_ref = arena.allocate((n_devices,), np.float64)
            arena.view(cached_codes_ref)[...] = np.nan
            remaining_ref = None
            if device_budget is not None:
                remaining_ref = arena.allocate((n_devices,), np.float64)
                arena.view(remaining_ref)[...] = float(device_budget)
            tasks = [
                ShardTask(
                    shard_index=s,
                    n_shards=plan.n_shards,
                    start=start,
                    arm=arm,
                    sensor=sensor,
                    epsilon=epsilon,
                    seed_seq=seqs[s],
                    truth=None,
                    reporting=None,
                    device_budget=device_budget,
                    mechanism_kwargs=dict(mechanism_kwargs),
                    shm=ShardShm(
                        truth=truth_refs[s],
                        reporting=reporting_refs[s],
                        values_out=values_ref.sub(
                            int(shard_bases[s]), (shard_totals[s],)
                        ),
                        n_fresh=n_fresh_ref.sub(start, (stop - start,)),
                        n_cached=n_cached_ref.sub(start, (stop - start,)),
                        cached_codes=cached_codes_ref.sub(start, (stop - start,)),
                        remaining=(
                            remaining_ref.sub(start, (stop - start,))
                            if remaining_ref is not None
                            else None
                        ),
                    ),
                )
                for s, (start, stop) in enumerate(plan.slices)
            ]
        else:
            tasks = [
                ShardTask(
                    shard_index=s,
                    n_shards=plan.n_shards,
                    start=start,
                    arm=arm,
                    sensor=sensor,
                    epsilon=epsilon,
                    seed_seq=seqs[s],
                    truth=np.ascontiguousarray(true_values[:, start:stop]),
                    reporting=np.ascontiguousarray(reporting[:, start:stop]),
                    device_budget=device_budget,
                    mechanism_kwargs=dict(mechanism_kwargs),
                )
                for s, (start, stop) in enumerate(plan.slices)
            ]

        if workers == 1:
            results: List[ShardResult] = [run_shard(t) for t in tasks]
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, plan.n_shards),
                initializer=install_shipments,
                initargs=(shipments,),
            ) as pool:
                # map() yields in shard order, so a failing shard surfaces
                # deterministically (lowest shard index first).
                results = list(pool.map(run_shard, tasks))

        if measure_ipc:
            ipc_bytes = measure_ipc_bytes(tasks, results)

        # ---- merge, in shard order ----------------------------------
        lam = sensor.d / epsilon if arm != "rr" else None
        server = AggregationServer(
            noise_scale=lam, streaming=streaming, count_thresholds=count_thresholds
        )
        if use_shm:
            values_flat = arena.view(values_ref)
            shard_offsets = [
                np.concatenate([[0], np.cumsum(counts)])
                for counts in shard_report_counts
            ]
        for epoch in range(n_epochs):
            for result in results:
                s = result.shard_index
                if use_shm:
                    lo = int(shard_bases[s] + shard_offsets[s][epoch])
                    hi = int(shard_bases[s] + shard_offsets[s][epoch + 1])
                    values = values_flat[lo:hi]
                else:
                    values = result.values_by_epoch[epoch]
                if values.size == 0:
                    continue
                if streaming:
                    # Zero-copy fold: streaming moments consume the view
                    # immediately, nothing is retained past the call.
                    server.submit_array(epoch, values, loss, donate=use_shm)
                else:
                    start, stop = plan.slices[s]
                    idx = start + np.flatnonzero(reporting[epoch, start:stop])
                    server.submit_array(
                        epoch,
                        values,
                        loss,
                        device_ids=[f"dev-{i:04d}" for i in idx],
                        donate=use_shm,
                    )
        if streaming:
            # The composition bound, recorded in bulk: every report claims
            # the same per-release loss, and the report count per device is
            # fixed by the coordinator-drawn masks.
            counts = reporting.sum(axis=0)
            server.record_claimed_losses(
                {
                    f"dev-{i:04d}": float(counts[i]) * loss
                    for i in np.flatnonzero(counts)
                }
            )

        target_pipeline = pipeline if pipeline is not None else default_pipeline()
        if execution_plan is not None:
            target_pipeline.adopt([plan_trace_event(execution_plan)])
        for result in results:
            target_pipeline.adopt(result.events)
        counters = functools.reduce(
            CounterSink.merge, (r.counter for r in results), CounterSink()
        )

        devices: List[Device] = []
        if with_devices:
            devices = [
                Device(f"dev-{i:04d}", reference, budget=device_budget)
                for i in range(n_devices)
            ]
            if use_shm:
                n_fresh_all = arena.view(n_fresh_ref)
                n_cached_all = arena.view(n_cached_ref)
                cached_codes_all = arena.view(cached_codes_ref)
                remaining_all = (
                    arena.view(remaining_ref) if remaining_ref is not None else None
                )
                for i, dev in enumerate(devices):
                    dev.n_fresh = int(n_fresh_all[i])
                    dev.n_cached = int(n_cached_all[i])
                    if remaining_all is not None and dev._accountant is not None:
                        dev._accountant._spent = float(device_budget) - float(
                            remaining_all[i]
                        )
                    if not np.isnan(cached_codes_all[i]):
                        dev._cache.code = float(cached_codes_all[i])
                del n_fresh_all, n_cached_all, cached_codes_all, remaining_all
            else:
                for result in results:
                    start = result.start
                    for j in range(result.n_fresh.shape[0]):
                        dev = devices[start + j]
                        dev.n_fresh = int(result.n_fresh[j])
                        dev.n_cached = int(result.n_cached[j])
                        if (
                            result.remaining is not None
                            and dev._accountant is not None
                        ):
                            dev._accountant._spent = float(device_budget) - float(
                                result.remaining[j]
                            )
                        if not np.isnan(result.cached_codes[j]):
                            dev._cache.code = result.cached_codes[j]

        true_means = [
            float(true_values[epoch, reporting[epoch]].mean())
            for epoch in range(n_epochs)
        ]
        estimated = [server.summarize(e).mean for e in server.epochs]
        if use_shm:
            # Drop the remaining views before close() so every mapping
            # can actually unmap (unlink succeeds regardless).
            values = values_flat = None  # noqa: F841
    finally:
        if arena is not None:
            arena.close()
            # Inline (workers=1) shm runs attach blocks by name in *this*
            # process; drop those cached handles so the mappings free.
            detach_all()
    return FleetResult(
        server=server,
        devices=devices,
        true_means=true_means,
        estimated_means=estimated,
        counters=counters,
        shard_plan=plan,
        ipc_bytes=ipc_bytes,
    )
