"""The per-shard worker: one device slice, one noise stream, one pipeline.

Everything a worker needs crosses the process boundary once, as a
picklable :class:`ShardTask`: the shard's truth slice, its precomputed
reporting masks (the coordinator draws all dropout randomness so workers
consume *only* their own audited stream), the spawned
:class:`~numpy.random.SeedSequence` for that stream, and the mechanism
recipe.  :func:`run_shard` is a module-level function so it pickles by
reference into a ``ProcessPoolExecutor``; it also runs inline (no pool)
for ``workers=1``, which is how the determinism tests compare worker
counts without multiprocessing noise.

Codebook shipping: pool workers start via :func:`install_shipments`,
which adopts the coordinator's already-built ``m → k`` table into the
process-wide :class:`~repro.rng.codebook.CodebookCache` — each worker
process warms once per (config, backend) instead of re-sweeping the
``2**Bu`` alphabet.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BudgetExhaustedError, ConfigurationError
from ..mechanisms import SensorSpec, make_mechanism
from ..rng.codebook import codebook_cache
from ..rng.urng import SplitStreamSource, audited_generator
from ..runtime import ArrayCharge, CounterSink, ReleasePipeline, RingBufferSink
from ..runtime.events import ReleaseEvent

__all__ = [
    "CodebookShipment",
    "ShardTask",
    "ShardResult",
    "run_shard",
    "install_shipments",
]


@dataclasses.dataclass(frozen=True)
class CodebookShipment:
    """A pre-built codebook table shipped coordinator → worker.

    The table is a deterministic function of ``(config, backend)``, so
    adopting it is exactly as audited as rebuilding it — see
    :meth:`repro.rng.codebook.CodebookCache.install`.
    """

    config: object  # FxpLaplaceConfig (kept untyped: no rng import cycle)
    fingerprint: Tuple
    table: np.ndarray


def install_shipments(shipments: Sequence[CodebookShipment]) -> None:
    """Pool initializer: warm this process's codebook cache."""
    cache = codebook_cache()
    for shipment in shipments:
        cache.install(shipment.config, shipment.fingerprint, shipment.table)


@dataclasses.dataclass
class ShardTask:
    """Everything one shard needs, picklable."""

    shard_index: int
    n_shards: int
    start: int
    """Global device index of this shard's first device."""
    arm: str
    sensor: SensorSpec
    epsilon: float
    seed_seq: np.random.SeedSequence
    """Spawned sub-seed of the fleet seed; this shard's audited stream."""
    truth: np.ndarray
    """True values, shape ``(n_epochs, shard_devices)``."""
    reporting: np.ndarray
    """Coordinator-drawn reporting masks, same shape, bool."""
    device_budget: Optional[float]
    mechanism_kwargs: Dict[str, object]


@dataclasses.dataclass
class ShardResult:
    """One shard's privatized output plus its trace and budget state."""

    shard_index: int
    start: int
    claimed_loss: float
    values_by_epoch: List[np.ndarray]
    """Privatized values per epoch (empty array where no device reported)."""
    n_fresh: np.ndarray
    n_cached: np.ndarray
    remaining: Optional[np.ndarray]
    cached_codes: np.ndarray
    events: List[ReleaseEvent]
    counter: CounterSink


def _shard_channel(epoch: int, shard_index: int, n_shards: int) -> str:
    # A single-shard plan reproduces the legacy per-epoch channel names,
    # so shards=1 traces are indistinguishable from unsharded ones.
    if n_shards == 1:
        return f"epoch-{epoch}"
    return f"epoch-{epoch}/shard-{shard_index}"


def run_shard(task: ShardTask) -> ShardResult:
    """Privatize one shard's device slice across all epochs.

    Mirrors the batched path of
    :func:`repro.aggregation.fleet.run_fleet` on the shard's slice: one
    pipeline release per (epoch, shard) with vectorized
    :class:`~repro.runtime.ArrayCharge` budget accounting.  Shard-epochs
    with no reporting device are skipped outright — deterministically,
    since the masks are fixed inputs — so they consume no noise stream.
    """
    n_epochs, shard_devices = task.truth.shape
    kwargs = dict(task.mechanism_kwargs)
    if task.arm != "ideal":
        kwargs.setdefault("input_bits", 14)
        kwargs.setdefault("source", SplitStreamSource(task.seed_seq))
    else:
        kwargs.setdefault("rng", audited_generator(task.seed_seq))
    counter = CounterSink()
    ring = RingBufferSink(capacity=max(n_epochs + 4, 16))
    kwargs["pipeline"] = ReleasePipeline(sinks=[counter, ring])
    mechanism = make_mechanism(task.arm, task.sensor, task.epsilon, **kwargs)
    if hasattr(mechanism, "rng") and hasattr(mechanism.rng, "kernel"):
        mechanism.rng.kernel  # resolve the codebook before the epoch loop

    loss = mechanism.claimed_loss_bound
    remaining = (
        np.full(shard_devices, float(task.device_budget))
        if task.device_budget is not None
        else None
    )
    cached_codes = np.full(shard_devices, np.nan)
    n_fresh = np.zeros(shard_devices, dtype=np.int64)
    n_cached = np.zeros(shard_devices, dtype=np.int64)
    values_by_epoch: List[np.ndarray] = []

    for epoch in range(n_epochs):
        idx = np.flatnonzero(task.reporting[epoch])
        if idx.size == 0:
            values_by_epoch.append(np.zeros(0))
            continue
        accounting = (
            ArrayCharge(remaining, cached_codes, loss, index=idx)
            if remaining is not None
            else None
        )
        try:
            outcome = mechanism.release(
                task.truth[epoch, idx],
                accounting=accounting,
                channel=_shard_channel(epoch, task.shard_index, task.n_shards),
            )
        except BudgetExhaustedError as exc:
            # Typed, picklable: crosses the pool boundary as the same
            # error the unsharded fleet raises.
            raise ConfigurationError(str(exc)) from exc
        hits = outcome.cache_hits
        n_fresh[idx] += ~hits
        n_cached[idx] += hits
        values_by_epoch.append(np.asarray(outcome.values, dtype=float))

    return ShardResult(
        shard_index=task.shard_index,
        start=task.start,
        claimed_loss=loss,
        values_by_epoch=values_by_epoch,
        n_fresh=n_fresh,
        n_cached=n_cached,
        remaining=remaining,
        cached_codes=cached_codes,
        events=ring.events,
        counter=counter,
    )
