"""The per-shard worker: one device slice, one noise stream, one pipeline.

Everything a worker needs crosses the process boundary once, as a
picklable :class:`ShardTask`: the shard's truth slice, its precomputed
reporting masks (the coordinator draws all dropout randomness so workers
consume *only* their own audited stream), the spawned
:class:`~numpy.random.SeedSequence` for that stream, and the mechanism
recipe.  :func:`run_shard` is a module-level function so it pickles by
reference into a ``ProcessPoolExecutor``; it also runs inline (no pool)
for ``workers=1``, which is how the determinism tests compare worker
counts without multiprocessing noise.

Codebook shipping: pool workers start via :func:`install_shipments`,
which adopts the coordinator's already-built ``m → k`` table into the
process-wide :class:`~repro.rng.codebook.CodebookCache` — each worker
process warms once per (config, backend) instead of re-sweeping the
``2**Bu`` alphabet.

Shared-memory transport: when the coordinator runs the zero-copy data
plane (:mod:`repro.parallel.shm`), the task's array payload is replaced
by a :class:`ShardShm` bundle of block refs — the worker attaches its
input slices by name and writes its outputs (flat per-epoch value
regions at coordinator-precomputed offsets, plus the per-device budget
state) straight into coordinator-owned buffers.  Only block names,
shapes and the small trace artifacts cross the pipe.  The privatization
itself is transport-blind, which is how the shm path stays bit-identical
to the pickle path by construction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BudgetExhaustedError, ConfigurationError
from ..mechanisms import SensorSpec, make_mechanism
from ..rng.codebook import codebook_cache
from ..rng.urng import SplitStreamSource, audited_generator
from ..runtime import ArrayCharge, CounterSink, ReleasePipeline, RingBufferSink
from ..runtime.events import ReleaseEvent
from .shm import ShmArrayRef

__all__ = [
    "CodebookShipment",
    "ShardShm",
    "ShardTask",
    "ShardResult",
    "run_shard",
    "install_shipments",
]


@dataclasses.dataclass(frozen=True)
class CodebookShipment:
    """A pre-built codebook table shipped coordinator → worker.

    The table is a deterministic function of ``(config, backend)``, so
    adopting it is exactly as audited as rebuilding it — see
    :meth:`repro.rng.codebook.CodebookCache.install`.
    """

    config: object  # FxpLaplaceConfig (kept untyped: no rng import cycle)
    fingerprint: Tuple
    table: np.ndarray


def install_shipments(shipments: Sequence[CodebookShipment]) -> None:
    """Pool initializer: warm this process's codebook cache."""
    cache = codebook_cache()
    for shipment in shipments:
        cache.install(shipment.config, shipment.fingerprint, shipment.table)


@dataclasses.dataclass(frozen=True)
class ShardShm:
    """Shared-memory refs replacing one numeric shard's array payload.

    Inputs (``truth``/``reporting``) are read-only slices the coordinator
    packed; outputs are coordinator-allocated regions the worker fills:
    ``values_out`` is the shard's flat value buffer (per-epoch offsets
    are recomputed worker-side from the reporting mask — deterministic,
    the coordinator derives the same layout when merging), the rest is
    the per-device budget/cache state the coordinator previously got back
    through pickle.
    """

    truth: ShmArrayRef
    reporting: ShmArrayRef
    values_out: ShmArrayRef
    n_fresh: ShmArrayRef
    n_cached: ShmArrayRef
    cached_codes: ShmArrayRef
    remaining: Optional[ShmArrayRef] = None


@dataclasses.dataclass
class ShardTask:
    """Everything one shard needs, picklable."""

    shard_index: int
    n_shards: int
    start: int
    """Global device index of this shard's first device."""
    arm: str
    sensor: SensorSpec
    epsilon: float
    seed_seq: np.random.SeedSequence
    """Spawned sub-seed of the fleet seed; this shard's audited stream."""
    truth: Optional[np.ndarray]
    """True values, shape ``(n_epochs, shard_devices)`` (``None`` ⇢ shm)."""
    reporting: Optional[np.ndarray]
    """Coordinator-drawn reporting masks, same shape, bool (``None`` ⇢ shm)."""
    device_budget: Optional[float]
    mechanism_kwargs: Dict[str, object]
    shm: Optional[ShardShm] = None
    """Zero-copy transport refs; replaces ``truth``/``reporting`` and the
    result's array fields when set (shapes travel on the refs)."""


@dataclasses.dataclass
class ShardResult:
    """One shard's privatized output plus its trace and budget state.

    On the shm transport the array fields are ``None``/empty — the data
    already sits in the coordinator's buffers — and only the loss bound,
    events and counters ride back through the pipe.
    """

    shard_index: int
    start: int
    claimed_loss: float
    values_by_epoch: List[np.ndarray]
    """Privatized values per epoch (empty array where no device reported;
    empty *list* on the shm transport)."""
    n_fresh: Optional[np.ndarray]
    n_cached: Optional[np.ndarray]
    remaining: Optional[np.ndarray]
    cached_codes: Optional[np.ndarray]
    events: List[ReleaseEvent]
    counter: CounterSink


def _shard_channel(epoch: int, shard_index: int, n_shards: int) -> str:
    # A single-shard plan reproduces the legacy per-epoch channel names,
    # so shards=1 traces are indistinguishable from unsharded ones.
    if n_shards == 1:
        return f"epoch-{epoch}"
    return f"epoch-{epoch}/shard-{shard_index}"


def run_shard(task: ShardTask) -> ShardResult:
    """Privatize one shard's device slice across all epochs.

    Mirrors the batched path of
    :func:`repro.aggregation.fleet.run_fleet` on the shard's slice: one
    pipeline release per (epoch, shard) with vectorized
    :class:`~repro.runtime.ArrayCharge` budget accounting.  Shard-epochs
    with no reporting device are skipped outright — deterministically,
    since the masks are fixed inputs — so they consume no noise stream.

    Transport never touches privatization: the shm branch only swaps
    where the inputs are read from and the outputs land, so both paths
    consume the identical audited stream and are bit-identical.
    """
    use_shm = task.shm is not None
    if use_shm:
        truth = task.shm.truth.attach()
        reporting = task.shm.reporting.attach()
    else:
        truth = task.truth
        reporting = task.reporting
    n_epochs, shard_devices = truth.shape
    kwargs = dict(task.mechanism_kwargs)
    if task.arm != "ideal":
        kwargs.setdefault("input_bits", 14)
        kwargs.setdefault("source", SplitStreamSource(task.seed_seq))
    else:
        kwargs.setdefault("rng", audited_generator(task.seed_seq))
    counter = CounterSink()
    ring = RingBufferSink(capacity=max(n_epochs + 4, 16))
    kwargs["pipeline"] = ReleasePipeline(sinks=[counter, ring])
    mechanism = make_mechanism(task.arm, task.sensor, task.epsilon, **kwargs)
    if hasattr(mechanism, "rng") and hasattr(mechanism.rng, "kernel"):
        mechanism.rng.kernel  # resolve the codebook before the epoch loop

    loss = mechanism.claimed_loss_bound
    if use_shm:
        # Budget/cache state lives directly in coordinator-owned buffers;
        # ArrayCharge mutates them in place, so nothing ships back.
        remaining = (
            task.shm.remaining.attach() if task.shm.remaining is not None else None
        )
        cached_codes = task.shm.cached_codes.attach()
        n_fresh = task.shm.n_fresh.attach()
        n_cached = task.shm.n_cached.attach()
        values_out = task.shm.values_out.attach()
        out_offset = 0
    else:
        remaining = (
            np.full(shard_devices, float(task.device_budget))
            if task.device_budget is not None
            else None
        )
        cached_codes = np.full(shard_devices, np.nan)
        n_fresh = np.zeros(shard_devices, dtype=np.int64)
        n_cached = np.zeros(shard_devices, dtype=np.int64)
    values_by_epoch: List[np.ndarray] = []

    for epoch in range(n_epochs):
        idx = np.flatnonzero(reporting[epoch])
        if idx.size == 0:
            if not use_shm:
                values_by_epoch.append(np.zeros(0))
            continue
        accounting = (
            ArrayCharge(remaining, cached_codes, loss, index=idx)
            if remaining is not None
            else None
        )
        try:
            outcome = mechanism.release(
                truth[epoch, idx],
                accounting=accounting,
                channel=_shard_channel(epoch, task.shard_index, task.n_shards),
            )
        except BudgetExhaustedError as exc:
            # Typed, picklable: crosses the pool boundary as the same
            # error the unsharded fleet raises.
            raise ConfigurationError(str(exc)) from exc
        hits = outcome.cache_hits
        n_fresh[idx] += ~hits
        n_cached[idx] += hits
        if use_shm:
            # Flat layout: epochs in order, each of this epoch's reports
            # contiguous.  The coordinator recomputes the same offsets
            # from the same masks when it folds the buffer.
            values_out[out_offset : out_offset + idx.size] = np.asarray(
                outcome.values, dtype=float
            )
            out_offset += idx.size
        else:
            values_by_epoch.append(np.asarray(outcome.values, dtype=float))

    return ShardResult(
        shard_index=task.shard_index,
        start=task.start,
        claimed_loss=loss,
        values_by_epoch=values_by_epoch,
        n_fresh=None if use_shm else n_fresh,
        n_cached=None if use_shm else n_cached,
        remaining=None if use_shm else remaining,
        cached_codes=None if use_shm else cached_codes,
        events=ring.events,
        counter=counter,
    )
