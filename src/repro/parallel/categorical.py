"""Sharded categorical fleet: vector-valued reports, O(d) merges.

The categorical counterpart of :mod:`repro.parallel.runner`.  Each shard
privatizes its device slice through a frequency-oracle arm
(:func:`~repro.mechanisms.make_oracle`) on its own spawned audited
stream, then *aggregates locally*: what crosses the process boundary is
the shard's per-epoch support-count vector (O(d) integers), never the
reports.  Counts fold by integer addition, which is associative, so the
merged counts — and everything estimated from them — are bit-identical
for any worker count; as in the numeric runner, the shard count (not the
pool size) is part of the reproducibility key.

Per-user public randomness survives sharding: OLH's hash is a pure
function of the *global* device index, which the coordinator threads to
every shard as explicit index arrays (dropout makes the reporting set
non-contiguous), so shard layout never changes any user's hash.

The trace substrate rides along unchanged: every shard runs a private
:class:`~repro.runtime.ReleasePipeline` with a
:class:`~repro.runtime.CounterSink` and ring buffer; the coordinator
merges counters via :meth:`~repro.runtime.CounterSink.merge`, adopts the
events (renumbered) into the target pipeline, and optionally appends
them shard-by-shard to a JSONL trace via
:class:`~repro.runtime.JsonlSink` in append mode.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import functools
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.oracles import make_oracle
from ..queries.frequency import FrequencyEstimate
from ..rng.urng import SplitStreamSource, shard_seed_sequences
from ..runtime import CounterSink, JsonlSink, ReleasePipeline, RingBufferSink
from ..runtime.events import ReleaseEvent
from ..runtime.pipeline import default_pipeline
from .sharding import ShardPlan, plan_shards

__all__ = [
    "CategoricalFleetResult",
    "CategoricalShardTask",
    "CategoricalShardResult",
    "run_categorical_shard",
    "run_fleet_categorical",
]


@dataclasses.dataclass
class CategoricalShardTask:
    """Everything one categorical shard needs, picklable."""

    shard_index: int
    n_shards: int
    start: int
    oracle: str
    n_categories: int
    epsilon: float
    seed_seq: np.random.SeedSequence
    truth: np.ndarray
    """True categories, shape ``(n_epochs, shard_devices)`` int64."""
    reporting: np.ndarray
    """Coordinator-drawn reporting masks, same shape, bool."""
    oracle_kwargs: Dict[str, object]


@dataclasses.dataclass
class CategoricalShardResult:
    """One shard's aggregated output: counts, never reports."""

    shard_index: int
    start: int
    claimed_loss: float
    counts_by_epoch: List[np.ndarray]
    """Per-epoch support counts (all-zeros where no device reported)."""
    n_by_epoch: List[int]
    events: List[ReleaseEvent]
    counter: CounterSink


def _shard_channel(epoch: int, shard_index: int, n_shards: int) -> str:
    if n_shards == 1:
        return f"epoch-{epoch}"
    return f"epoch-{epoch}/shard-{shard_index}"


def run_categorical_shard(task: CategoricalShardTask) -> CategoricalShardResult:
    """Privatize and locally aggregate one shard's slice across epochs.

    One pipeline release per (epoch, shard); the reports are folded into
    the shard's support-count vector immediately and discarded — the
    streaming discipline starts at the worker.
    """
    n_epochs, _ = task.truth.shape
    counter = CounterSink()
    ring = RingBufferSink(capacity=max(n_epochs + 4, 16))
    arm = make_oracle(
        task.oracle,
        task.n_categories,
        task.epsilon,
        source=SplitStreamSource(task.seed_seq),
        pipeline=ReleasePipeline(sinks=[counter, ring]),
        **task.oracle_kwargs,
    )
    loss = arm.claimed_loss_bound
    counts_by_epoch: List[np.ndarray] = []
    n_by_epoch: List[int] = []
    zeros = np.zeros(task.n_categories, dtype=np.int64)

    for epoch in range(n_epochs):
        idx = np.flatnonzero(task.reporting[epoch])
        if idx.size == 0:
            counts_by_epoch.append(zeros.copy())
            n_by_epoch.append(0)
            continue
        # Global device indices: the per-user public randomness key.
        users = task.start + idx
        reports = arm.report(
            task.truth[epoch, idx],
            channel=_shard_channel(epoch, task.shard_index, task.n_shards),
            user_offset=users,
        )
        counts_by_epoch.append(
            np.asarray(arm.support_counts(reports, user_offset=users), dtype=np.int64)
        )
        n_by_epoch.append(int(idx.size))

    return CategoricalShardResult(
        shard_index=task.shard_index,
        start=task.start,
        claimed_loss=loss,
        counts_by_epoch=counts_by_epoch,
        n_by_epoch=n_by_epoch,
        events=ring.events,
        counter=counter,
    )


@dataclasses.dataclass(frozen=True)
class CategoricalFleetResult:
    """Outcome of a categorical fleet simulation."""

    server: object
    #: The coordinator's reference oracle (public channel metadata only —
    #: it never consumed noise).
    oracle: object
    #: Per-epoch unbiased frequency estimates.
    estimates: List[FrequencyEstimate]
    #: Per-epoch true frequencies (over the devices that reported).
    true_frequencies: List[np.ndarray]
    counters: CounterSink
    shard_plan: ShardPlan

    @property
    def mean_abs_error(self) -> float:
        """MAE of the per-epoch frequency vectors, averaged over epochs."""
        errs = [
            float(np.abs(est.frequencies - f).mean())
            for est, f in zip(self.estimates, self.true_frequencies)
        ]
        return float(np.mean(errs))


def run_fleet_categorical(
    true_values: np.ndarray,
    n_categories: int,
    epsilon: float,
    oracle: str = "oue",
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    source_seed=None,
    pipeline: Optional[ReleasePipeline] = None,
    workers: int = 1,
    shards: Optional[int] = None,
    streaming: bool = True,
    count_thresholds: Sequence[float] = (),
    trace_path=None,
    **oracle_kwargs,
) -> CategoricalFleetResult:
    """Run a categorical fleet epoch matrix sharded across processes.

    ``true_values`` is an ``(n_epochs, n_devices)`` integer category
    matrix; each reporting device sends one privatized report per epoch
    through the chosen frequency-oracle arm.  The server receives only
    per-shard support counts (``submit_counts``) — the categorical path
    is streaming-native, ``streaming`` only controls the server's mode
    flag for any numeric traffic sharing it.  ``trace_path`` appends
    every shard's release events to one JSONL trace, shard by shard, via
    :class:`~repro.runtime.JsonlSink` in append mode.

    Determinism contract: bit-identical for any ``workers``; the
    ``(shards, source_seed, n_devices)`` triple fixes the streams.
    """
    from ..aggregation.server import AggregationServer

    true_values = np.asarray(true_values)
    if true_values.ndim != 2:
        raise ConfigurationError("true_values must be (n_epochs, n_devices)")
    if not np.issubdtype(true_values.dtype, np.integer):
        raise ConfigurationError("categorical fleet values must be integers")
    true_values = true_values.astype(np.int64)
    if true_values.min() < 0 or true_values.max() >= n_categories:
        raise ConfigurationError(f"categories must be in 0..{n_categories - 1}")
    if not 0.0 <= dropout < 1.0:
        raise ConfigurationError("dropout must be in [0, 1)")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    for forbidden in ("source", "pipeline"):
        if forbidden in oracle_kwargs:
            raise ConfigurationError(
                f"run_fleet_categorical derives {forbidden!r} per shard; pass "
                "source_seed/pipeline instead of a shared instance"
            )
    # dplint: allow[DPL001] -- dropout/straggler simulation randomness only;
    # release noise comes from the per-shard audited sources.
    rng = rng or np.random.default_rng()
    n_epochs, n_devices = true_values.shape
    plan: ShardPlan = plan_shards(n_devices, shards)

    # Reference oracle: validates the configuration once and supplies the
    # public channel metadata for estimation.  It consumes no noise.
    reference = make_oracle(oracle, n_categories, epsilon, **oracle_kwargs)
    loss = reference.claimed_loss_bound

    # Coordinator-owned simulation randomness, same call pattern as the
    # numeric fleet, so a given rng seed picks the same reporting sets.
    reporting = np.empty((n_epochs, n_devices), dtype=bool)
    for epoch in range(n_epochs):
        mask = rng.random(n_devices) >= dropout
        if not mask.any():
            mask[int(rng.integers(n_devices))] = True  # never a silent epoch
        reporting[epoch] = mask

    seqs = shard_seed_sequences(source_seed, plan.n_shards)
    tasks = [
        CategoricalShardTask(
            shard_index=s,
            n_shards=plan.n_shards,
            start=start,
            oracle=oracle,
            n_categories=int(n_categories),
            epsilon=float(epsilon),
            seed_seq=seqs[s],
            truth=np.ascontiguousarray(true_values[:, start:stop]),
            reporting=np.ascontiguousarray(reporting[:, start:stop]),
            oracle_kwargs=dict(oracle_kwargs),
        )
        for s, (start, stop) in enumerate(plan.slices)
    ]

    if workers == 1:
        results: List[CategoricalShardResult] = [
            run_categorical_shard(t) for t in tasks
        ]
    else:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, plan.n_shards)
        ) as pool:
            results = list(pool.map(run_categorical_shard, tasks))

    # ---- merge, in shard order ------------------------------------------
    server = AggregationServer(
        streaming=streaming, count_thresholds=count_thresholds
    )
    for epoch in range(n_epochs):
        for result in results:
            n = result.n_by_epoch[epoch]
            if n == 0:
                continue
            server.submit_counts(epoch, result.counts_by_epoch[epoch], n, loss)
    # Composition bound, in bulk: report counts per device are fixed by
    # the coordinator-drawn masks.
    per_device = reporting.sum(axis=0)
    server.record_claimed_losses(
        {
            f"dev-{i:04d}": float(per_device[i]) * loss
            for i in np.flatnonzero(per_device)
        }
    )

    target_pipeline = pipeline if pipeline is not None else default_pipeline()
    for result in results:
        target_pipeline.adopt(result.events)
    if trace_path is not None:
        # One append-mode sink per shard: successive sinks extend the
        # file, which is exactly the JsonlSink(append=True) contract.
        for result in results:
            with JsonlSink(trace_path, append=True) as sink:
                for event in result.events:
                    # dplint: allow[DPL006] -- ReleaseEvents are already
                    # privatized pipeline outputs; the taint is via the
                    # shard-result container, which also carries the
                    # simulation ground truth used for utility scoring.
                    sink.emit(event)
    counters = functools.reduce(
        CounterSink.merge, (r.counter for r in results), CounterSink()
    )

    estimates = [
        server.frequency_estimates(e, reference) for e in server.categorical_epochs
    ]
    true_frequencies = [
        np.bincount(true_values[epoch, reporting[epoch]], minlength=n_categories)
        / max(int(reporting[epoch].sum()), 1)
        for epoch in range(n_epochs)
    ]
    return CategoricalFleetResult(
        server=server,
        oracle=reference,
        estimates=estimates,
        true_frequencies=true_frequencies,
        counters=counters,
        shard_plan=plan,
    )
