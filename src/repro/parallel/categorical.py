"""Sharded categorical fleet: vector-valued reports, O(d) merges.

The categorical counterpart of :mod:`repro.parallel.runner`.  Each shard
privatizes its device slice through a frequency-oracle arm
(:func:`~repro.mechanisms.make_oracle`) on its own spawned audited
stream, then *aggregates locally*: what crosses the process boundary is
the shard's per-epoch support-count vector (O(d) integers), never the
reports.  Counts fold by integer addition, which is associative, so the
merged counts — and everything estimated from them — are bit-identical
for any worker count; as in the numeric runner, the shard count (not the
pool size) is part of the reproducibility key.

Per-user public randomness survives sharding: OLH's hash is a pure
function of the *global* device index, which the coordinator threads to
every shard as explicit index arrays (dropout makes the reporting set
non-contiguous), so shard layout never changes any user's hash.

The trace substrate rides along unchanged: every shard runs a private
:class:`~repro.runtime.ReleasePipeline` with a
:class:`~repro.runtime.CounterSink` and ring buffer; the coordinator
merges counters via :meth:`~repro.runtime.CounterSink.merge`, adopts the
events (renumbered) into the target pipeline, and optionally appends
them shard-by-shard to a JSONL trace via
:class:`~repro.runtime.JsonlSink` in append mode.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import functools
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.oracles import make_oracle
from ..queries.frequency import FrequencyEstimate
from ..rng.urng import SplitStreamSource, shard_seed_sequences
from ..runtime import CounterSink, JsonlSink, ReleasePipeline, RingBufferSink
from ..runtime.events import ReleaseEvent
from ..runtime.pipeline import default_pipeline
from .planner import ExecutionPlan
from .sharding import ShardPlan, plan_shards
from .shm import ShmArena, ShmArrayRef, detach_all

__all__ = [
    "CategoricalFleetResult",
    "CategoricalShardShm",
    "CategoricalShardTask",
    "CategoricalShardResult",
    "run_categorical_shard",
    "run_fleet_categorical",
]


@dataclasses.dataclass(frozen=True)
class CategoricalShardShm:
    """Shared-memory refs replacing one categorical shard's payload.

    ``counts_out``/``n_out`` are the shard's rows of the coordinator's
    ``(n_epochs, n_categories)`` count matrix and per-epoch report
    tally — the worker writes them in place of shipping count vectors
    back through the pipe.
    """

    truth: ShmArrayRef
    reporting: ShmArrayRef
    counts_out: ShmArrayRef
    n_out: ShmArrayRef


@dataclasses.dataclass
class CategoricalShardTask:
    """Everything one categorical shard needs, picklable."""

    shard_index: int
    n_shards: int
    start: int
    oracle: str
    n_categories: int
    epsilon: float
    seed_seq: np.random.SeedSequence
    truth: Optional[np.ndarray]
    """True categories, shape ``(n_epochs, shard_devices)`` int64
    (``None`` ⇢ shm)."""
    reporting: Optional[np.ndarray]
    """Coordinator-drawn reporting masks, same shape, bool (``None`` ⇢ shm)."""
    oracle_kwargs: Dict[str, object]
    shm: Optional[CategoricalShardShm] = None
    """Zero-copy transport refs; replaces the array payload when set."""


@dataclasses.dataclass
class CategoricalShardResult:
    """One shard's aggregated output: counts, never reports.

    On the shm transport ``counts_by_epoch``/``n_by_epoch`` are empty —
    the counts already sit in coordinator-owned buffers.
    """

    shard_index: int
    start: int
    claimed_loss: float
    counts_by_epoch: List[np.ndarray]
    """Per-epoch support counts (all-zeros where no device reported)."""
    n_by_epoch: List[int]
    events: List[ReleaseEvent]
    counter: CounterSink


def _shard_channel(epoch: int, shard_index: int, n_shards: int) -> str:
    if n_shards == 1:
        return f"epoch-{epoch}"
    return f"epoch-{epoch}/shard-{shard_index}"


def run_categorical_shard(task: CategoricalShardTask) -> CategoricalShardResult:
    """Privatize and locally aggregate one shard's slice across epochs.

    One pipeline release per (epoch, shard); the reports are folded into
    the shard's support-count vector immediately and discarded — the
    streaming discipline starts at the worker.

    Transport never touches privatization: with shm refs the worker
    attaches its input slices by name and writes its count rows straight
    into the coordinator's matrix, consuming the identical audited
    stream — bit-identical to the pickle transport by construction.
    """
    use_shm = task.shm is not None
    if use_shm:
        truth = task.shm.truth.attach()
        reporting = task.shm.reporting.attach()
        counts_out = task.shm.counts_out.attach()
        n_out = task.shm.n_out.attach()
    else:
        truth = task.truth
        reporting = task.reporting
    n_epochs, _ = truth.shape
    counter = CounterSink()
    ring = RingBufferSink(capacity=max(n_epochs + 4, 16))
    arm = make_oracle(
        task.oracle,
        task.n_categories,
        task.epsilon,
        source=SplitStreamSource(task.seed_seq),
        pipeline=ReleasePipeline(sinks=[counter, ring]),
        **task.oracle_kwargs,
    )
    loss = arm.claimed_loss_bound
    counts_by_epoch: List[np.ndarray] = []
    n_by_epoch: List[int] = []
    zeros = np.zeros(task.n_categories, dtype=np.int64)

    for epoch in range(n_epochs):
        idx = np.flatnonzero(reporting[epoch])
        if idx.size == 0:
            if not use_shm:
                counts_by_epoch.append(zeros.copy())
                n_by_epoch.append(0)
            continue
        # Global device indices: the per-user public randomness key.
        users = task.start + idx
        reports = arm.report(
            truth[epoch, idx],
            channel=_shard_channel(epoch, task.shard_index, task.n_shards),
            user_offset=users,
        )
        counts = np.asarray(
            arm.support_counts(reports, user_offset=users), dtype=np.int64
        )
        if use_shm:
            counts_out[epoch] = counts
            n_out[epoch] = idx.size
        else:
            counts_by_epoch.append(counts)
            n_by_epoch.append(int(idx.size))

    return CategoricalShardResult(
        shard_index=task.shard_index,
        start=task.start,
        claimed_loss=loss,
        counts_by_epoch=counts_by_epoch,
        n_by_epoch=n_by_epoch,
        events=ring.events,
        counter=counter,
    )


@dataclasses.dataclass(frozen=True)
class CategoricalFleetResult:
    """Outcome of a categorical fleet simulation."""

    server: object
    #: The coordinator's reference oracle (public channel metadata only —
    #: it never consumed noise).
    oracle: object
    #: Per-epoch unbiased frequency estimates.
    estimates: List[FrequencyEstimate]
    #: Per-epoch true frequencies (over the devices that reported).
    true_frequencies: List[np.ndarray]
    counters: CounterSink
    shard_plan: ShardPlan
    #: Measured pipe payload (pickled tasks + results) when the run was
    #: invoked with ``measure_ipc=True``; ``None`` otherwise.
    ipc_bytes: Optional[int] = None

    @property
    def mean_abs_error(self) -> float:
        """MAE of the per-epoch frequency vectors, averaged over epochs."""
        errs = [
            float(np.abs(est.frequencies - f).mean())
            for est, f in zip(self.estimates, self.true_frequencies)
        ]
        return float(np.mean(errs))


def run_fleet_categorical(
    true_values: np.ndarray,
    n_categories: int,
    epsilon: float,
    oracle: str = "oue",
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    source_seed=None,
    pipeline: Optional[ReleasePipeline] = None,
    workers: int = 1,
    shards: Optional[int] = None,
    streaming: bool = True,
    count_thresholds: Sequence[float] = (),
    trace_path=None,
    shm: Optional[bool] = None,
    measure_ipc: bool = False,
    execution_plan: Optional[ExecutionPlan] = None,
    **oracle_kwargs,
) -> CategoricalFleetResult:
    """Run a categorical fleet epoch matrix sharded across processes.

    ``true_values`` is an ``(n_epochs, n_devices)`` integer category
    matrix; each reporting device sends one privatized report per epoch
    through the chosen frequency-oracle arm.  The server receives only
    per-shard support counts (``submit_counts``) — the categorical path
    is streaming-native, ``streaming`` only controls the server's mode
    flag for any numeric traffic sharing it.  ``trace_path`` appends
    every shard's release events to one JSONL trace, shard by shard, via
    :class:`~repro.runtime.JsonlSink` in append mode.

    ``shm``/``measure_ipc``/``execution_plan`` behave exactly as on
    :func:`~repro.parallel.runner.run_fleet_sharded`: transport selector
    (``None`` → shm iff pooled), pipe-payload measurement, and an
    adaptive plan that overrides ``workers`` (plus ``shards`` when not
    explicitly given) and is echoed into the trace.

    Determinism contract: bit-identical for any ``workers`` and either
    transport; the ``(shards, source_seed, n_devices)`` triple fixes the
    streams.
    """
    from ..aggregation.server import AggregationServer

    if execution_plan is not None:
        workers = execution_plan.workers
        if shards is None:
            shards = execution_plan.shards

    true_values = np.asarray(true_values)
    if true_values.ndim != 2:
        raise ConfigurationError("true_values must be (n_epochs, n_devices)")
    if not np.issubdtype(true_values.dtype, np.integer):
        raise ConfigurationError("categorical fleet values must be integers")
    true_values = true_values.astype(np.int64)
    if true_values.min() < 0 or true_values.max() >= n_categories:
        raise ConfigurationError(f"categories must be in 0..{n_categories - 1}")
    if not 0.0 <= dropout < 1.0:
        raise ConfigurationError("dropout must be in [0, 1)")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    for forbidden in ("source", "pipeline"):
        if forbidden in oracle_kwargs:
            raise ConfigurationError(
                f"run_fleet_categorical derives {forbidden!r} per shard; pass "
                "source_seed/pipeline instead of a shared instance"
            )
    # dplint: allow[DPL001] -- dropout/straggler simulation randomness only;
    # release noise comes from the per-shard audited sources.
    rng = rng or np.random.default_rng()
    n_epochs, n_devices = true_values.shape
    plan: ShardPlan = plan_shards(n_devices, shards)

    # Reference oracle: validates the configuration once and supplies the
    # public channel metadata for estimation.  It consumes no noise.
    reference = make_oracle(oracle, n_categories, epsilon, **oracle_kwargs)
    loss = reference.claimed_loss_bound

    # Coordinator-owned simulation randomness, same call pattern as the
    # numeric fleet, so a given rng seed picks the same reporting sets.
    reporting = np.empty((n_epochs, n_devices), dtype=bool)
    for epoch in range(n_epochs):
        mask = rng.random(n_devices) >= dropout
        if not mask.any():
            mask[int(rng.integers(n_devices))] = True  # never a silent epoch
        reporting[epoch] = mask

    seqs = shard_seed_sequences(source_seed, plan.n_shards)
    use_shm = (workers > 1) if shm is None else bool(shm)
    arena: Optional[ShmArena] = None
    ipc_bytes: Optional[int] = None
    try:
        if use_shm:
            arena = ShmArena()
            truth_refs = arena.pack(
                [true_values[:, start:stop] for start, stop in plan.slices]
            )
            reporting_refs = arena.pack(
                [reporting[:, start:stop] for start, stop in plan.slices]
            )
            # Per-shard output rows: counts (n_epochs × d) and the report
            # tally (n_epochs), packed one region per shard in one block.
            counts_ref = arena.allocate(
                (plan.n_shards, n_epochs, int(n_categories)), np.int64
            )
            n_ref = arena.allocate((plan.n_shards, n_epochs), np.int64)
            tasks = [
                CategoricalShardTask(
                    shard_index=s,
                    n_shards=plan.n_shards,
                    start=start,
                    oracle=oracle,
                    n_categories=int(n_categories),
                    epsilon=float(epsilon),
                    seed_seq=seqs[s],
                    truth=None,
                    reporting=None,
                    oracle_kwargs=dict(oracle_kwargs),
                    shm=CategoricalShardShm(
                        truth=truth_refs[s],
                        reporting=reporting_refs[s],
                        counts_out=counts_ref.sub(
                            s * n_epochs * int(n_categories),
                            (n_epochs, int(n_categories)),
                        ),
                        n_out=n_ref.sub(s * n_epochs, (n_epochs,)),
                    ),
                )
                for s, (start, stop) in enumerate(plan.slices)
            ]
        else:
            tasks = [
                CategoricalShardTask(
                    shard_index=s,
                    n_shards=plan.n_shards,
                    start=start,
                    oracle=oracle,
                    n_categories=int(n_categories),
                    epsilon=float(epsilon),
                    seed_seq=seqs[s],
                    truth=np.ascontiguousarray(true_values[:, start:stop]),
                    reporting=np.ascontiguousarray(reporting[:, start:stop]),
                    oracle_kwargs=dict(oracle_kwargs),
                )
                for s, (start, stop) in enumerate(plan.slices)
            ]

        if workers == 1:
            results: List[CategoricalShardResult] = [
                run_categorical_shard(t) for t in tasks
            ]
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, plan.n_shards)
            ) as pool:
                results = list(pool.map(run_categorical_shard, tasks))

        if measure_ipc:
            from .runner import measure_ipc_bytes

            ipc_bytes = measure_ipc_bytes(tasks, results)

        # ---- merge, in shard order --------------------------------------
        server = AggregationServer(
            streaming=streaming, count_thresholds=count_thresholds
        )
        if use_shm:
            counts_all = arena.view(counts_ref)
            n_all = arena.view(n_ref)
        for epoch in range(n_epochs):
            for result in results:
                s = result.shard_index
                if use_shm:
                    n = int(n_all[s, epoch])
                    counts = counts_all[s, epoch]
                else:
                    n = result.n_by_epoch[epoch]
                    counts = result.counts_by_epoch[epoch]
                if n == 0:
                    continue
                # The count fold is additive and consumes the vector
                # immediately — donation is zero-copy.
                server.submit_counts(epoch, counts, n, loss, donate=use_shm)
        # Composition bound, in bulk: report counts per device are fixed by
        # the coordinator-drawn masks.
        per_device = reporting.sum(axis=0)
        server.record_claimed_losses(
            {
                f"dev-{i:04d}": float(per_device[i]) * loss
                for i in np.flatnonzero(per_device)
            }
        )

        target_pipeline = pipeline if pipeline is not None else default_pipeline()
        if execution_plan is not None:
            from .runner import plan_trace_event

            target_pipeline.adopt([plan_trace_event(execution_plan)])
        for result in results:
            target_pipeline.adopt(result.events)
        if trace_path is not None:
            # One append-mode sink per shard: successive sinks extend the
            # file, which is exactly the JsonlSink(append=True) contract.
            for result in results:
                with JsonlSink(trace_path, append=True) as sink:
                    for event in result.events:
                        # dplint: allow[DPL006] -- ReleaseEvents are already
                        # privatized pipeline outputs; the taint is via the
                        # shard-result container, which also carries the
                        # simulation ground truth used for utility scoring.
                        sink.emit(event)
        counters = functools.reduce(
            CounterSink.merge, (r.counter for r in results), CounterSink()
        )

        estimates = [
            server.frequency_estimates(e, reference)
            for e in server.categorical_epochs
        ]
        if use_shm:
            counts = counts_all = n_all = None  # noqa: F841
    finally:
        if arena is not None:
            arena.close()
            detach_all()
    true_frequencies = [
        np.bincount(true_values[epoch, reporting[epoch]], minlength=n_categories)
        / max(int(reporting[epoch].sum()), 1)
        for epoch in range(n_epochs)
    ]
    return CategoricalFleetResult(
        server=server,
        oracle=reference,
        estimates=estimates,
        true_frequencies=true_frequencies,
        counters=counters,
        shard_plan=plan,
        ipc_bytes=ipc_bytes,
    )
