"""Tail-event distinguishing attack on the naive baseline (paper Fig. 12).

Fig. 12 feeds two different Statlog entries into the naive FxP DP-Box and
shows that, near the tail, the two output histograms stop overlapping —
an adversary observing such an output identifies the input *with
certainty*.  This module makes that attack operational:

* :func:`distinguishing_outputs` computes, exactly from the mechanism's
  conditional PMFs, which outputs reveal the input (one PMF positive, the
  other zero);
* :func:`run_distinguisher` samples the mechanism and reports how often a
  certain identification actually occurs, plus the adversary's overall
  advantage.

Against a guarded (resampling/thresholding) mechanism the certain set is
empty — the experiments use that contrast.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.fxp_common import FxpMechanismBase

__all__ = ["DistinguisherReport", "distinguishing_outputs", "run_distinguisher"]


@dataclasses.dataclass(frozen=True)
class DistinguisherReport:
    """Outcome of the two-hypothesis identification attack."""

    x1: float
    x2: float
    #: Exact probability a single output identifies x1 with certainty
    #: (output possible under x1, impossible under x2).
    certain_rate_x1: float
    #: Symmetric rate for x2.
    certain_rate_x2: float
    #: Empirical fraction of sampled outputs that were certain.
    observed_certain_fraction: float
    #: Bayes advantage of the optimal distinguisher over a coin flip
    #: (1/2·TV distance between the two output distributions... in [0, 1/2]).
    bayes_advantage: float


def _conditional_pmfs(mech: FxpMechanismBase, x1: float, x2: float):
    """The mechanism's conditional family restricted to two hypotheses."""
    from ..privacy.loss import DiscreteMechanismFamily

    k1 = int(mech.quantize_inputs(np.asarray([x1]))[0])
    k2 = int(mech.quantize_inputs(np.asarray([x2]))[0])
    if k1 == k2:
        raise ConfigurationError("the two hypotheses quantize to the same code")
    if hasattr(mech, "window"):
        mode = "resample" if mech.name == "Resampling" else "threshold"
        return DiscreteMechanismFamily.additive(
            mech.noise_pmf, [k1, k2], window=mech.window, mode=mode
        )
    return DiscreteMechanismFamily.additive(mech.noise_pmf, [k1, k2], mode="baseline")


def distinguishing_outputs(
    mech: FxpMechanismBase, x1: float, x2: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Output values certain for x1, certain for x2, and ambiguous.

    "Certain for x1" means reachable under x1 but unreachable under x2.
    """
    fam = _conditional_pmfs(mech, x1, x2)
    p1, p2 = fam.matrix[0], fam.matrix[1]
    vals = fam.output_values()
    only1 = (p1 > 0) & (p2 == 0)
    only2 = (p2 > 0) & (p1 == 0)
    both = (p1 > 0) & (p2 > 0)
    return vals[only1], vals[only2], vals[both]


def run_distinguisher(
    mech: FxpMechanismBase,
    x1: float,
    x2: float,
    n_samples: int = 20000,
) -> DistinguisherReport:
    """Exact rates + an empirical confirmation by sampling the mechanism."""
    if n_samples < 1:
        raise ConfigurationError("need at least one sample")
    fam = _conditional_pmfs(mech, x1, x2)
    p1, p2 = fam.matrix[0], fam.matrix[1]
    certain1 = float(p1[(p1 > 0) & (p2 == 0)].sum())
    certain2 = float(p2[(p2 > 0) & (p1 == 0)].sum())
    tv = 0.5 * float(np.abs(p1 - p2).sum())  # total-variation distance
    # Empirical: sample both hypotheses, check membership in the certain sets.
    vals1, vals2, _ = distinguishing_outputs(mech, x1, x2)
    cs1 = set(np.round(vals1 / mech.delta).astype(int))
    cs2 = set(np.round(vals2 / mech.delta).astype(int))
    half = n_samples // 2
    y1 = mech.privatize(np.full(half, x1))
    y2 = mech.privatize(np.full(n_samples - half, x2))
    k_y1 = np.round(y1 / mech.delta).astype(int)
    k_y2 = np.round(y2 / mech.delta).astype(int)
    hits = sum(k in cs1 for k in k_y1) + sum(k in cs2 for k in k_y2)
    return DistinguisherReport(
        x1=x1,
        x2=x2,
        certain_rate_x1=certain1,
        certain_rate_x2=certain2,
        observed_certain_fraction=hits / n_samples,
        bayes_advantage=0.5 * tv,
    )
