"""Timing side channel of resampling (paper Section IV-C).

"Our implementation of resampling may introduce a timing channel since
the number of resamples depends on the sensor value" — an observer who
sees only *when* the ready flag rises learns something about the value,
because readings near the range edges are rejected (and redrawn) more
often.  The proposed mitigation draws a fixed number of samples and picks
one, making the latency constant.

This module makes the channel measurable:

* :func:`exact_draw_distributions` — the exact per-hypothesis geometric
  draw-count distributions from the acceptance probabilities;
* :func:`timing_advantage` — the Bayes advantage of the optimal
  latency-only distinguisher over ``n_queries`` observations;
* :func:`run_timing_attack` — an empirical likelihood-ratio attack on
  sampled draw counts, with or without the fixed-draw mitigation.

The empirical attack observes the mechanism **only through its emitted
release events**: each batch of queries is one
:class:`~repro.runtime.ReleaseEvent`, and the attacker reads the total
draw count off the event — exactly the quantity a bus- or ready-flag
observer integrates.  No mechanism internals are touched.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.resampling import ResamplingMechanism

__all__ = [
    "TimingAttackReport",
    "exact_draw_distributions",
    "timing_advantage",
    "run_timing_attack",
]


def _geometric_pmf(p: float, max_k: int) -> np.ndarray:
    """Pr[draws = k], k = 1..max_k, last bin absorbs the tail."""
    ks = np.arange(1, max_k + 1)
    pmf = p * (1.0 - p) ** (ks - 1)
    pmf[-1] += (1.0 - p) ** max_k
    return pmf


def exact_draw_distributions(
    mech: ResamplingMechanism, x1: float, x2: float, max_draws: int = 32
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact draw-count PMFs for two hypothesized sensor values."""
    p1 = mech.acceptance_probability(x1)
    p2 = mech.acceptance_probability(x2)
    return _geometric_pmf(p1, max_draws), _geometric_pmf(p2, max_draws)


def timing_advantage(
    mech: ResamplingMechanism,
    x1: float,
    x2: float,
    n_queries: int = 1,
    max_draws: int = 32,
) -> float:
    """Bayes advantage of the optimal latency-only distinguisher.

    For one query this is half the total-variation distance between the
    two draw-count distributions; for ``n_queries`` i.i.d. observations
    we fold the distributions (sum of draw counts) and take TV there.
    """
    if n_queries < 1:
        raise ConfigurationError("need at least one query")
    d1, d2 = exact_draw_distributions(mech, x1, x2, max_draws)
    f1, f2 = d1, d2
    for _ in range(n_queries - 1):
        f1 = np.convolve(f1, d1)
        f2 = np.convolve(f2, d2)
    return 0.5 * float(np.abs(f1 - f2).sum())


@dataclasses.dataclass(frozen=True)
class TimingAttackReport:
    """Outcome of the empirical latency-only distinguishing attack."""

    x1: float
    x2: float
    n_queries: int
    #: Exact acceptance probabilities under the two hypotheses.
    accept_prob_x1: float
    accept_prob_x2: float
    #: Empirical success rate of the likelihood-ratio distinguisher
    #: (0.5 = no information).
    success_rate: float
    #: Exact single-query Bayes advantage.
    single_query_advantage: float
    #: Whether the fixed-draw mitigation was active.
    mitigated: bool


def run_timing_attack(
    mech: ResamplingMechanism,
    x1: float,
    x2: float,
    n_queries: int = 50,
    n_trials: int = 400,
    fixed_draws: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> TimingAttackReport:
    """Empirical likelihood-ratio attack using only draw counts.

    Each trial: pick a hypothesis at random, observe ``n_queries`` draw
    counts (through the real mechanism), decide by exact likelihood
    ratio.  With ``fixed_draws > 0`` the mitigation is modelled: every
    query reports the constant count, which carries zero information.
    """
    if n_trials < 10:
        raise ConfigurationError("need at least 10 trials")
    rng = rng or np.random.default_rng()
    p1 = mech.acceptance_probability(x1)
    p2 = mech.acceptance_probability(x2)
    log1, log2 = np.log(p1), np.log(p2)
    log1m, log2m = np.log1p(-p1) if p1 < 1 else -np.inf, (
        np.log1p(-p2) if p2 < 1 else -np.inf
    )
    correct = 0
    for _ in range(n_trials):
        truth = int(rng.integers(0, 2))  # 0 -> x1, 1 -> x2
        x = x1 if truth == 0 else x2
        if fixed_draws > 0:
            # Constant observations: likelihoods tie; guess at random.
            decide = int(rng.integers(0, 2))
        else:
            # Observe the release through the event stream: the batch's
            # emitted event carries the total draw count (the Fig. 12
            # leak), which is a sufficient statistic for the geometric
            # likelihood ratio.
            with mech.pipeline.capture() as ring:
                mech.privatize(np.full(n_queries, x))
            extra_total = ring.events[-1].resample_rounds
            ll1 = n_queries * log1 + float(extra_total) * log1m
            ll2 = n_queries * log2 + float(extra_total) * log2m
            if ll1 == ll2:
                decide = int(rng.integers(0, 2))
            else:
                decide = 0 if ll1 > ll2 else 1
        correct += int(decide == truth)
    return TimingAttackReport(
        x1=x1,
        x2=x2,
        n_queries=n_queries,
        accept_prob_x1=p1,
        accept_prob_x2=p2,
        success_rate=correct / n_trials,
        single_query_advantage=timing_advantage(mech, x1, x2),
        mitigated=fixed_draws > 0,
    )
