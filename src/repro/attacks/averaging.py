"""Averaging adversary against budget control (paper Fig. 13).

The adversary requests the same sensor value repeatedly and averages the
noised replies — the maximum-likelihood estimate of the original value
under symmetric additive noise.  Without budget control the estimate's
error decays as ``1/√k``; with a finite budget, the DP-Box starts
replaying its cached output once the budget is spent, freezing the
adversary's information and flooring the error (paper Fig. 13).

The adversary modelled here is rational: a reply identical to the
previous one carries no new information (it is the cache replaying), so
it is discarded rather than averaged in — otherwise the estimate would
drift toward the single cached sample instead of flooring at the
exhaustion-time accuracy.

:func:`run_averaging_attack` drives a real cycle-level DP-Box; a fast
mechanism-level variant (:func:`run_averaging_attack_mechanism`) supports
the large request counts of the Fig.-13 sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..core.dpbox import DPBoxDriver
from ..errors import ConfigurationError
from ..mechanisms.base import LocalMechanism

__all__ = [
    "AttackTrace",
    "run_averaging_attack",
    "run_averaging_attack_mechanism",
]


@dataclasses.dataclass(frozen=True)
class AttackTrace:
    """Adversary's estimate quality vs number of requests."""

    true_value: float
    checkpoints: np.ndarray  # request counts at which the estimate is taken
    estimates: np.ndarray  # running-mean estimates at the checkpoints
    relative_errors: np.ndarray  # |estimate - truth| / range
    n_cached: int  # replies served from the cache (budget exhausted)


def _checkpoints(n_requests: int, n_points: int) -> np.ndarray:
    pts = np.unique(
        np.round(np.logspace(0, np.log10(n_requests), n_points)).astype(int)
    )
    return pts[pts >= 1]


def run_averaging_attack(
    driver: DPBoxDriver,
    true_value: float,
    data_range: float,
    n_requests: int = 500,
    n_checkpoints: int = 20,
) -> AttackTrace:
    """Attack a cycle-level DP-Box through its command interface."""
    if n_requests < 1 or data_range <= 0:
        raise ConfigurationError("need positive requests and range")
    replies = np.empty(n_requests)
    cached = 0
    for i in range(n_requests):
        result = driver.noise(true_value)
        replies[i] = result.value
        cached += int(result.from_cache)
    return _trace(true_value, data_range, replies, cached, n_checkpoints)


def run_averaging_attack_mechanism(
    mechanism: LocalMechanism,
    true_value: float,
    data_range: float,
    n_requests: int = 5000,
    budget: Optional[float] = None,
    per_query_loss: Optional[float] = None,
    n_checkpoints: int = 30,
) -> AttackTrace:
    """Mechanism-level attack with an explicit budget model.

    ``budget``/``per_query_loss`` emulate the DP-Box accounting: after
    ``floor(budget / per_query_loss)`` fresh replies, the cached (last
    fresh) output is replayed.  ``budget=None`` disables control (the
    paper's no-budget arm).
    """
    if n_requests < 1 or data_range <= 0:
        raise ConfigurationError("need positive requests and range")
    x = np.full(n_requests, true_value)
    fresh = mechanism.privatize(x)
    if budget is not None:
        loss = per_query_loss if per_query_loss is not None else mechanism.claimed_loss_bound
        if loss <= 0:
            raise ConfigurationError("per-query loss must be positive")
        n_fresh = max(int(budget // loss), 1)
        if n_fresh < n_requests:
            fresh[n_fresh:] = fresh[n_fresh - 1]  # cached replay
        cached = max(n_requests - n_fresh, 0)
    else:
        cached = 0
    return _trace(true_value, data_range, fresh, cached, n_checkpoints)


def _trace(
    true_value: float,
    data_range: float,
    replies: np.ndarray,
    cached: int,
    n_checkpoints: int,
) -> AttackTrace:
    pts = _checkpoints(replies.size, n_checkpoints)
    # Rational adversary: drop replies identical to the previous one
    # (cache replays), then average what remains.
    informative = np.ones(replies.size, dtype=bool)
    informative[1:] = replies[1:] != replies[:-1]
    weights = informative.astype(float)
    running_sum = np.cumsum(replies * weights)
    running_n = np.maximum(np.cumsum(weights), 1.0)
    running = running_sum / running_n
    estimates = running[pts - 1]
    rel = np.abs(estimates - true_value) / data_range
    return AttackTrace(
        true_value=true_value,
        checkpoints=pts,
        estimates=estimates,
        relative_errors=rel,
        n_cached=cached,
    )


def floor_error(trace: AttackTrace, tail: int = 3) -> float:
    """The attack's terminal (floored) relative error."""
    if trace.relative_errors.size < tail:
        tail = trace.relative_errors.size
    return float(np.mean(trace.relative_errors[-tail:]))


__all__.append("floor_error")
