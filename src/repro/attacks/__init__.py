"""Adversary models used in the evaluation: the averaging attacker
against budget control (Fig. 13) and the tail-event distinguisher against
the naive baseline (Fig. 12)."""

from .averaging import (
    AttackTrace,
    floor_error,
    run_averaging_attack,
    run_averaging_attack_mechanism,
)
from .distinguisher import (
    DistinguisherReport,
    distinguishing_outputs,
    run_distinguisher,
)
from .timing import (
    TimingAttackReport,
    exact_draw_distributions,
    run_timing_attack,
    timing_advantage,
)

__all__ = [
    "AttackTrace",
    "floor_error",
    "run_averaging_attack",
    "run_averaging_attack_mechanism",
    "DistinguisherReport",
    "distinguishing_outputs",
    "run_distinguisher",
    "TimingAttackReport",
    "exact_draw_distributions",
    "run_timing_attack",
    "timing_advantage",
]
