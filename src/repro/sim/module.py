"""Base class for synchronous hardware modules."""

from __future__ import annotations

import abc
from typing import List

from .clock import Clock
from .signal import Register

__all__ = ["Module"]


class Module(abc.ABC):
    """A clocked module: combinational logic + registers.

    Subclasses implement :meth:`_combinational`, reading register outputs
    and scheduling register writes; :meth:`tick` runs the logic and then
    latches every declared register, mimicking a posedge update.
    """

    def __init__(self, clock: Clock):
        self.clock = clock
        self._registers: List[Register] = []
        clock.attach(self)

    def reg(self, initial) -> Register:
        """Declare a register owned by this module."""
        r: Register = Register(initial)
        self._registers.append(r)
        return r

    @abc.abstractmethod
    def _combinational(self) -> None:
        """One cycle of combinational logic (schedule register writes)."""

    def tick(self) -> None:
        """Run one clock cycle: logic, then latch every register."""
        self._combinational()
        for r in self._registers:
            r.latch()
