"""Minimal synchronous hardware-simulation substrate (clock, registers,
modules) on which the cycle-level DP-Box model is built."""

from .clock import Clock
from .module import Module
from .signal import Register

__all__ = ["Clock", "Module", "Register"]
