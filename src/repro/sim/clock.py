"""Cycle clock for the synchronous hardware models.

A :class:`Clock` is a shared cycle counter that drives one or more
:class:`~repro.sim.module.Module` instances.  Ticking the clock advances
every attached module by one cycle in registration order (a single
synchronous clock domain, which is all DP-Box needs).
"""

from __future__ import annotations

from typing import List

__all__ = ["Clock"]


class Clock:
    """Single-domain cycle counter driving registered modules."""

    def __init__(self, frequency_hz: float = 16e6):
        self.frequency_hz = frequency_hz
        self.cycle = 0
        self._modules: List["Module"] = []  # noqa: F821 - forward ref

    def attach(self, module) -> None:
        """Register a module to be ticked by this clock."""
        self._modules.append(module)

    def tick(self, n: int = 1) -> None:
        """Advance ``n`` cycles, ticking every attached module each cycle."""
        for _ in range(n):
            self.cycle += 1
            for mod in self._modules:
                mod.tick()

    @property
    def elapsed_seconds(self) -> float:
        """Wall time represented by the elapsed cycles."""
        return self.cycle / self.frequency_hz
