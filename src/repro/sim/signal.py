"""Registers with synchronous update semantics.

A :class:`Register` models a clocked flip-flop bank: writes performed
during a cycle become visible only after :meth:`latch` (the clock edge).
This is what keeps the DP-Box FSM honest about what can happen in a
single hardware cycle.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = ["Register"]


class Register(Generic[T]):
    """A value visible as of the last clock edge, with a pending write."""

    def __init__(self, initial: T):
        self._q: T = initial
        self._d: T = initial
        self._pending = False

    @property
    def q(self) -> T:
        """Current (latched) output of the register."""
        return self._q

    def set(self, value: T) -> None:
        """Schedule ``value`` to be latched at the next clock edge."""
        self._d = value
        self._pending = True

    def latch(self) -> None:
        """Clock edge: move the pending write (if any) to the output."""
        if self._pending:
            self._q = self._d
            self._pending = False

    def force(self, value: T) -> None:
        """Asynchronous load (reset/initialization paths only)."""
        self._q = value
        self._d = value
        self._pending = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Register(q={self._q!r})"
