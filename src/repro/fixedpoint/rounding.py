"""Rounding modes for fixed-point quantization.

Hardware quantizers implement several distinct rounding behaviours; the
choice affects both the DC bias of a datapath and — as the paper shows —
the exact probability mass assigned to each random-number output.  The
paper's FxP RNG rounds to the *nearest* quantization level (Section
III-A2); the other modes are provided so alternative datapaths (the
software reference implementation, the CORDIC post-scaler) can be modelled
faithfully.

All functions operate on "scaled" values, i.e. real values divided by the
quantization step, and return integer grid indices as ``numpy`` arrays (or
Python ints for scalar input).
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

__all__ = ["RoundingMode", "round_scaled"]

_ArrayLike = Union[float, int, np.ndarray]


class RoundingMode(enum.Enum):
    """How a real value is mapped onto the fixed-point grid."""

    #: Round to nearest; ties away from zero (C ``round``; matches the
    #: behaviour of a comparator-based hardware rounder with a carry-in).
    NEAREST = "nearest"

    #: Round to nearest; ties to even (IEEE-754 default, ``np.rint``).
    NEAREST_EVEN = "nearest-even"

    #: Round toward negative infinity (a plain right-shift in hardware).
    FLOOR = "floor"

    #: Round toward positive infinity.
    CEIL = "ceil"

    #: Round toward zero (magnitude truncation).
    TRUNCATE = "truncate"


def _round_half_away(x: np.ndarray) -> np.ndarray:
    return np.sign(x) * np.floor(np.abs(x) + 0.5)


def round_scaled(x: _ArrayLike, mode: RoundingMode = RoundingMode.NEAREST) -> _ArrayLike:
    """Round ``x`` (already divided by the step) to integer grid indices.

    Parameters
    ----------
    x:
        Scalar or array of values in units of the quantization step.
    mode:
        The rounding behaviour to apply.

    Returns
    -------
    Integer-valued float array (or float scalar) of grid indices.  The
    result is kept floating so that callers can clamp before converting to
    integer dtypes without overflow surprises.
    """
    arr = np.asarray(x, dtype=float)
    if mode is RoundingMode.NEAREST:
        out = _round_half_away(arr)
    elif mode is RoundingMode.NEAREST_EVEN:
        out = np.rint(arr)
    elif mode is RoundingMode.FLOOR:
        out = np.floor(arr)
    elif mode is RoundingMode.CEIL:
        out = np.ceil(arr)
    elif mode is RoundingMode.TRUNCATE:
        out = np.trunc(arr)
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown rounding mode: {mode!r}")
    if np.isscalar(x) or (isinstance(x, np.ndarray) and x.ndim == 0):
        return float(out)
    return out
