"""Fixed-point arithmetic substrate.

Everything in the DP-Box datapath — the Tausworthe URNG output, the CORDIC
logarithm, the noise scaling and the final noised sensor value — lives on
a fixed-point grid.  This package provides the Q-format descriptors,
scalar register-level arithmetic, and vectorized (numpy) equivalents used
throughout the library.
"""

from .format import DPBOX_NOISE_FORMAT, QFormat
from .number import Fxp, OverflowPolicy, quantize_code
from .rounding import RoundingMode, round_scaled
from .vector import (
    dequantize_codes,
    quantization_error,
    quantize_array,
    saturate_codes,
)

__all__ = [
    "DPBOX_NOISE_FORMAT",
    "QFormat",
    "Fxp",
    "OverflowPolicy",
    "quantize_code",
    "RoundingMode",
    "round_scaled",
    "quantize_array",
    "dequantize_codes",
    "saturate_codes",
    "quantization_error",
]
