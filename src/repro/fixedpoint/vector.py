"""Vectorized fixed-point helpers built on numpy.

The scalar :class:`~repro.fixedpoint.number.Fxp` models a single hardware
register; experiments that push hundreds of thousands of sensor readings
through a mechanism need the same quantization semantics applied to whole
arrays at once.  These helpers guarantee bit-identical results to the
scalar path (tests assert this) while running at numpy speed.
"""

from __future__ import annotations

import numpy as np

from .format import QFormat
from .number import OverflowPolicy
from .rounding import RoundingMode, round_scaled
from ..errors import OverflowPolicyError

__all__ = ["quantize_array", "dequantize_codes", "saturate_codes", "quantization_error"]


def quantize_array(
    values: np.ndarray,
    fmt: QFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowPolicy = OverflowPolicy.SATURATE,
) -> np.ndarray:
    """Quantize a float array to int64 codes of ``fmt``.

    Semantics match :func:`repro.fixedpoint.number.quantize_code`
    element-wise.
    """
    values = np.asarray(values, dtype=float)
    idx = round_scaled(values / fmt.step, rounding)
    return saturate_codes(np.asarray(idx), fmt, overflow)


def saturate_codes(
    codes: np.ndarray, fmt: QFormat, overflow: OverflowPolicy = OverflowPolicy.SATURATE
) -> np.ndarray:
    """Apply an overflow policy to an array of (possibly float) codes."""
    codes = np.asarray(codes)
    if overflow is OverflowPolicy.SATURATE:
        out = np.clip(codes, fmt.min_code, fmt.max_code)
    elif overflow is OverflowPolicy.WRAP:
        span = fmt.num_codes
        out = np.mod(codes - fmt.min_code, span) + fmt.min_code
    else:
        bad = (codes < fmt.min_code) | (codes > fmt.max_code)
        if np.any(bad):
            raise OverflowPolicyError(
                f"{int(np.count_nonzero(bad))} values overflow {fmt.describe()}"
            )
        out = codes
    return out.astype(np.int64)


def dequantize_codes(codes: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Convert integer codes back to float values (``codes * fmt.step``)."""
    return np.asarray(codes, dtype=np.int64) * fmt.step


def quantization_error(values: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Signed error introduced by round-to-nearest quantization of ``values``."""
    values = np.asarray(values, dtype=float)
    return dequantize_codes(quantize_array(values, fmt), fmt) - values
