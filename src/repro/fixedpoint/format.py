"""Q-format descriptors for fixed-point numbers.

A :class:`QFormat` captures the static shape of a two's-complement
fixed-point representation: total bit width, number of fractional bits,
and signedness.  It is deliberately a small immutable value object; the
arithmetic lives in :mod:`repro.fixedpoint.number` and
:mod:`repro.fixedpoint.vector`.

The DP-Box of the paper uses a 20-bit signed datapath ("we needed to use
20-bit fixed-point values" to support 13-bit sensors at eps >= 0.1); its
format is exposed as :data:`DPBOX_NOISE_FORMAT`.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError

__all__ = ["QFormat", "DPBOX_NOISE_FORMAT"]


@dataclasses.dataclass(frozen=True)
class QFormat:
    """Shape of a two's-complement fixed-point representation.

    Parameters
    ----------
    total_bits:
        Total number of bits, including the sign bit when ``signed``.
    frac_bits:
        Number of fractional bits.  May exceed ``total_bits`` (pure
        fractions with leading zeros) or be negative (coarse grids).
    signed:
        Whether the representation is two's-complement signed.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ConfigurationError(f"total_bits must be >= 1, got {self.total_bits}")
        if self.signed and self.total_bits < 2:
            raise ConfigurationError("signed formats need at least 2 bits")

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def int_bits(self) -> int:
        """Number of integer (non-fractional, non-sign) bits."""
        return self.total_bits - self.frac_bits - (1 if self.signed else 0)

    @property
    def step(self) -> float:
        """Quantization step (value of one LSB)."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_code(self) -> int:
        """Smallest representable integer code."""
        return -(1 << (self.total_bits - 1)) if self.signed else 0

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_code * self.step

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.step

    @property
    def num_codes(self) -> int:
        """Number of distinct representable codes (2**total_bits)."""
        return 1 << self.total_bits

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def representable(self, value: float) -> bool:
        """Whether ``value`` lies exactly on this format's grid and in range."""
        scaled = value / self.step
        return (
            self.min_code <= scaled <= self.max_code
            and float(scaled) == int(round(scaled))
        )

    def describe(self) -> str:
        """Human-readable Q-notation, e.g. ``sQ7.12`` for signed 20-bit."""
        prefix = "sQ" if self.signed else "uQ"
        return f"{prefix}{self.int_bits}.{self.frac_bits}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


#: The 20-bit signed datapath format of the synthesized DP-Box (Section V).
#: Seven integer bits cover normalized sensor ranges; twelve fractional
#: bits give the resolution needed for eps >= 0.1 at 13-bit sensors.
DPBOX_NOISE_FORMAT = QFormat(total_bits=20, frac_bits=12, signed=True)
