"""Scalar fixed-point values with explicit overflow policies.

:class:`Fxp` wraps an integer *code* together with a :class:`QFormat` and
implements the handful of arithmetic operations the DP-Box datapath needs:
add/sub (same format), multiply (full-precision then requantize), shifts
(the paper scales noise by ``eps = 2**-nm`` with a bit shift), negation,
and comparisons.  Saturation or wrap-around on overflow is selectable,
matching the two behaviours real ULP datapaths exhibit.

These scalars model single hardware registers; bulk experiments use the
vectorized helpers in :mod:`repro.fixedpoint.vector`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Union

from ..errors import FixedPointError, OverflowPolicyError
from .format import QFormat
from .rounding import RoundingMode, round_scaled

__all__ = ["OverflowPolicy", "Fxp", "quantize_code"]


class OverflowPolicy(enum.Enum):
    """What happens when a result exceeds the representable range."""

    #: Clamp to the nearest representable extreme (saturating arithmetic).
    SATURATE = "saturate"

    #: Two's-complement wrap-around (what an unchecked adder does).
    WRAP = "wrap"

    #: Raise :class:`OverflowPolicyError` (useful in tests).
    ERROR = "error"


def quantize_code(
    value: float,
    fmt: QFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowPolicy = OverflowPolicy.SATURATE,
) -> int:
    """Map a real ``value`` to an integer code of ``fmt``.

    The value is scaled by ``1/fmt.step``, rounded per ``rounding`` and
    then range-reduced per ``overflow``.
    """
    idx = int(round_scaled(value / fmt.step, rounding))
    return _apply_overflow(idx, fmt, overflow)


def _apply_overflow(code: int, fmt: QFormat, policy: OverflowPolicy) -> int:
    if fmt.min_code <= code <= fmt.max_code:
        return code
    if policy is OverflowPolicy.SATURATE:
        return max(fmt.min_code, min(fmt.max_code, code))
    if policy is OverflowPolicy.WRAP:
        span = fmt.num_codes
        wrapped = (code - fmt.min_code) % span + fmt.min_code
        return wrapped
    raise OverflowPolicyError(
        f"code {code} outside [{fmt.min_code}, {fmt.max_code}] for {fmt.describe()}"
    )


@dataclasses.dataclass(frozen=True)
class Fxp:
    """An immutable fixed-point scalar: integer ``code`` in format ``fmt``."""

    code: int
    fmt: QFormat

    def __post_init__(self) -> None:
        if not (self.fmt.min_code <= self.code <= self.fmt.max_code):
            raise FixedPointError(
                f"code {self.code} not representable in {self.fmt.describe()}"
            )

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls,
        value: float,
        fmt: QFormat,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowPolicy = OverflowPolicy.SATURATE,
    ) -> "Fxp":
        """Quantize a real value into this format."""
        return cls(quantize_code(value, fmt, rounding, overflow), fmt)

    def to_float(self) -> float:
        """The real value this code represents."""
        return self.code * self.fmt.step

    def requantize(
        self,
        fmt: QFormat,
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowPolicy = OverflowPolicy.SATURATE,
    ) -> "Fxp":
        """Convert to another format (re-rounding as needed)."""
        return Fxp.from_float(self.to_float(), fmt, rounding, overflow)

    # ------------------------------------------------------------------
    # Arithmetic (same-format operands; result stays in the format)
    # ------------------------------------------------------------------
    def _check_same_fmt(self, other: "Fxp") -> None:
        if other.fmt != self.fmt:
            raise FixedPointError(
                f"format mismatch: {self.fmt.describe()} vs {other.fmt.describe()}"
            )

    def add(self, other: "Fxp", overflow: OverflowPolicy = OverflowPolicy.SATURATE) -> "Fxp":
        """Fixed-point addition with the given overflow behaviour."""
        self._check_same_fmt(other)
        return Fxp(_apply_overflow(self.code + other.code, self.fmt, overflow), self.fmt)

    def sub(self, other: "Fxp", overflow: OverflowPolicy = OverflowPolicy.SATURATE) -> "Fxp":
        """Fixed-point subtraction with the given overflow behaviour."""
        self._check_same_fmt(other)
        return Fxp(_apply_overflow(self.code - other.code, self.fmt, overflow), self.fmt)

    def mul(
        self,
        other: "Fxp",
        rounding: RoundingMode = RoundingMode.NEAREST,
        overflow: OverflowPolicy = OverflowPolicy.SATURATE,
    ) -> "Fxp":
        """Full-precision multiply, requantized back into this format.

        Hardware computes the (2N)-bit product and then drops fractional
        bits with a rounder; we model exactly that: the integer product has
        ``2 * frac_bits`` fractional bits and is rounded back to
        ``frac_bits``.
        """
        self._check_same_fmt(other)
        prod = self.code * other.code  # 2*frac_bits fractional bits
        scaled = prod / (1 << self.fmt.frac_bits)
        idx = int(round_scaled(scaled, rounding))
        return Fxp(_apply_overflow(idx, self.fmt, overflow), self.fmt)

    def shift(self, amount: int, overflow: OverflowPolicy = OverflowPolicy.SATURATE) -> "Fxp":
        """Arithmetic shift: ``amount > 0`` shifts left, ``< 0`` right.

        Right shifts round toward negative infinity, matching a plain
        arithmetic shifter.  This is the operation DP-Box uses to apply
        ``eps = 2**-nm`` scaling (paper eq. 19).
        """
        if amount >= 0:
            code = self.code << amount
        else:
            code = self.code >> (-amount)
        return Fxp(_apply_overflow(code, self.fmt, overflow), self.fmt)

    def neg(self, overflow: OverflowPolicy = OverflowPolicy.SATURATE) -> "Fxp":
        """Two's-complement negation (note ``-min_code`` saturates)."""
        return Fxp(_apply_overflow(-self.code, self.fmt, overflow), self.fmt)

    def abs(self, overflow: OverflowPolicy = OverflowPolicy.SATURATE) -> "Fxp":
        """Absolute value (``abs(min_code)`` saturates to ``max_code``)."""
        return self.neg(overflow) if self.code < 0 else self

    # ------------------------------------------------------------------
    # Comparisons (same format only)
    # ------------------------------------------------------------------
    def __lt__(self, other: "Fxp") -> bool:
        self._check_same_fmt(other)
        return self.code < other.code

    def __le__(self, other: "Fxp") -> bool:
        self._check_same_fmt(other)
        return self.code <= other.code

    def __gt__(self, other: "Fxp") -> bool:
        self._check_same_fmt(other)
        return self.code > other.code

    def __ge__(self, other: "Fxp") -> bool:
        self._check_same_fmt(other)
        return self.code >= other.code

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fxp({self.to_float():g} [{self.code}] {self.fmt.describe()})"


Number = Union[int, float, Fxp]
