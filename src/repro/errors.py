"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime privacy faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters."""


class FixedPointError(ReproError):
    """A fixed-point operation failed (e.g. unrepresentable value)."""


class OverflowPolicyError(FixedPointError):
    """A value exceeded the representable range under the ``error`` policy."""


class PrivacyError(ReproError):
    """Base class for privacy-related failures."""


class PrivacyViolationError(PrivacyError):
    """A mechanism was proven *not* to satisfy the requested epsilon-LDP."""


class BudgetExhaustedError(PrivacyError):
    """A noising request arrived after the privacy budget was used up.

    DP-Box normally answers such requests from its output cache instead of
    raising; this exception is raised only when caching is disabled.
    """


class CalibrationError(PrivacyError):
    """No threshold exists that meets the requested privacy-loss bound."""


class ResampleExhaustedError(PrivacyError):
    """A resampling guard hit its round limit without an in-window draw.

    The release pipeline emits a :class:`repro.runtime.ReleaseEvent` with
    ``exhausted=True`` before raising, so the failure is visible in the
    trace.  Hitting this almost always means the guard window was
    mis-calibrated (acceptance probability far below the paper's design
    point), not bad luck.
    """


class HardwareProtocolError(ReproError):
    """The DP-Box command sequence violated the hardware interface protocol."""


class UncalibratableConfigError(HardwareProtocolError, CalibrationError):
    """The DP-Box refused a configuration no guard window can satisfy.

    Raised when a commanded (epsilon, range) combination cannot be
    calibrated to the loss target on the configured datapath width.  It
    is both a :class:`CalibrationError` (no threshold exists — widen the
    datapath or relax epsilon, paper Section III-D) and a
    :class:`HardwareProtocolError` (the command is refused cleanly and
    the FSM stays recoverable), so both handling styles work.
    """
