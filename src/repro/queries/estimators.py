"""Debiased estimators on privatized data (library extensions).

The paper's tables apply queries *naively* to the noised data.  Knowing
the mechanism, several of them can be debiased — a natural extension a
downstream user of this library would want:

* **variance**: Laplace noise adds exactly ``2λ²``; subtract it.
* **counting / CDF**: the noisy indicator frequency is the true frequency
  convolved with the noise CDF; a two-point deconvolution corrects the
  threshold predicate under a locally-linear data-CDF assumption.
* **mean**: already unbiased; provided for API symmetry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng.laplace_ideal import IdealLaplace

__all__ = ["debiased_mean", "debiased_variance", "debiased_count_above"]


def debiased_mean(noisy: np.ndarray) -> float:
    """Mean of privatized data (unbiased as-is for symmetric noise)."""
    noisy = np.asarray(noisy, dtype=float)
    if noisy.size == 0:
        raise ConfigurationError("empty data")
    return float(np.mean(noisy))


def debiased_variance(noisy: np.ndarray, lam: float) -> float:
    """Variance estimate with the Laplace noise variance removed.

    ``Var[x + n] = Var[x] + 2λ²`` for independent ``n ~ Lap(λ)``; the
    estimate is clipped at zero.
    """
    if lam <= 0:
        raise ConfigurationError("lam must be positive")
    noisy = np.asarray(noisy, dtype=float)
    if noisy.size == 0:
        raise ConfigurationError("empty data")
    return max(float(np.var(noisy)) - 2.0 * lam * lam, 0.0)


def debiased_count_above(
    noisy: np.ndarray,
    threshold: float,
    lam: float,
    data_range: Optional[float] = None,
) -> float:
    """Count-above-threshold corrected for noise smearing.

    For data value ``x``, ``Pr[x + n > t] = 1 - F_n(t - x)``.  Under a
    locally linear data CDF near ``t``, the smearing is symmetric and the
    naive count is approximately unbiased; the residual bias comes from
    the data mass pushed across the boundary asymmetrically.  We apply a
    first-order correction using the empirical density of the *noisy*
    data around the threshold over one noise scale.

    ``data_range`` optionally clips the correction magnitude (at most the
    full count).
    """
    if lam <= 0:
        raise ConfigurationError("lam must be positive")
    noisy = np.asarray(noisy, dtype=float)
    if noisy.size == 0:
        raise ConfigurationError("empty data")
    naive = float(np.count_nonzero(noisy > threshold))
    # Estimate asymmetry of the noisy density on either side of t.
    window = lam
    left = np.count_nonzero((noisy > threshold - window) & (noisy <= threshold))
    right = np.count_nonzero((noisy > threshold) & (noisy <= threshold + window))
    dist = IdealLaplace(lam)
    # Expected one-sided leakage across t for a symmetric kernel: half the
    # local imbalance times the mean one-sided overshoot mass.
    overshoot = float(1.0 - dist.cdf(np.asarray(0.0)))  # = 0.5
    correction = 0.5 * (left - right) * overshoot
    est = naive + correction
    if data_range is not None:
        est = min(max(est, 0.0), float(noisy.size))
    return est
