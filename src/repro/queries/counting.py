"""Counting query.

The paper reports a counting query without specifying the predicate
(Table V); per DESIGN.md §5 we count entries **above a threshold value**,
defaulting to the dataset mid-range, which is the natural sensor-side
predicate ("how many readings are high?").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Query

__all__ = ["CountingQuery"]


class CountingQuery(Query):
    """Number of entries strictly above a threshold."""

    name = "counting"

    def __init__(self, threshold: Optional[float] = None):
        #: Predicate threshold; ``None`` means the mid-range of the data
        #: the query is evaluated on (computed per call).
        self.threshold = threshold

    def evaluate(self, data: np.ndarray) -> float:
        data = self._check(data)
        t = self.threshold
        if t is None:
            t = 0.5 * (float(data.min()) + float(data.max()))
        return float(np.count_nonzero(data > t))

    def with_threshold(self, threshold: float) -> "CountingQuery":
        """A copy pinned to an explicit threshold (the harness pins the
        raw-data mid-range so noisy and raw trials share a predicate)."""
        return CountingQuery(threshold=threshold)
