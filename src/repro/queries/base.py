"""Statistical query interface.

Paper Section VI evaluates four aggregate queries — mean, median,
variance, counting — applied to privatized data, measuring utility as the
mean absolute error against the same query on raw data.  Each query is a
deterministic function of a data vector; the MAE harness in
:mod:`repro.queries.utility` runs them over repeated privatization
trials.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Query"]


class Query(abc.ABC):
    """A deterministic aggregate statistic of a data vector."""

    #: Name used in result tables.
    name: str = "query"

    @abc.abstractmethod
    def evaluate(self, data: np.ndarray) -> float:
        """Compute the statistic of ``data`` (1-D)."""

    def _check(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=float).ravel()
        if data.size == 0:
            raise ConfigurationError("query applied to empty data")
        return data

    def absolute_error(self, noisy: np.ndarray, raw: np.ndarray) -> float:
        """``|q(noisy) - q(raw)|`` for one privatization trial."""
        return abs(self.evaluate(noisy) - self.evaluate(raw))
