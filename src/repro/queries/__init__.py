"""Statistical queries and the MAE utility harness (Tables II–V)."""

from .base import Query
from .counting import CountingQuery
from .estimators import debiased_count_above, debiased_mean, debiased_variance
from .frequency import (
    FrequencyEstimate,
    aggregate_reports,
    estimate_frequencies,
    estimate_from_counts,
    frequency_variance,
    ideal_oracle_variance,
)
from .heavy_hitters import HeavyHitterLevel, HeavyHittersResult, pem_heavy_hitters
from .histogram import HistogramQuery, bucketize, histogram_via_krr
from .mean import MeanQuery
from .quantile import QuantileQuery
from .median import MedianQuery
from .utility import UtilityResult, mae_trials, measure_utility
from .variance import VarianceQuery

__all__ = [
    "Query",
    "CountingQuery",
    "FrequencyEstimate",
    "aggregate_reports",
    "estimate_frequencies",
    "estimate_from_counts",
    "frequency_variance",
    "ideal_oracle_variance",
    "HeavyHitterLevel",
    "HeavyHittersResult",
    "pem_heavy_hitters",
    "HistogramQuery",
    "bucketize",
    "histogram_via_krr",
    "MeanQuery",
    "MedianQuery",
    "QuantileQuery",
    "VarianceQuery",
    "UtilityResult",
    "mae_trials",
    "measure_utility",
    "debiased_count_above",
    "debiased_mean",
    "debiased_variance",
]

#: The four paper queries, in table order.
PAPER_QUERIES = (MeanQuery(), MedianQuery(), VarianceQuery(), CountingQuery())
