"""Statistical queries and the MAE utility harness (Tables II–V)."""

from .base import Query
from .counting import CountingQuery
from .estimators import debiased_count_above, debiased_mean, debiased_variance
from .histogram import HistogramQuery, bucketize, histogram_via_krr
from .mean import MeanQuery
from .quantile import QuantileQuery
from .median import MedianQuery
from .utility import UtilityResult, mae_trials, measure_utility
from .variance import VarianceQuery

__all__ = [
    "Query",
    "CountingQuery",
    "HistogramQuery",
    "bucketize",
    "histogram_via_krr",
    "MeanQuery",
    "MedianQuery",
    "QuantileQuery",
    "VarianceQuery",
    "UtilityResult",
    "mae_trials",
    "measure_utility",
    "debiased_count_above",
    "debiased_mean",
    "debiased_variance",
]

#: The four paper queries, in table order.
PAPER_QUERIES = (MeanQuery(), MedianQuery(), VarianceQuery(), CountingQuery())
