"""Median query."""

from __future__ import annotations

import numpy as np

from .base import Query

__all__ = ["MedianQuery"]


class MedianQuery(Query):
    """Sample median.

    The median of Laplace-noised data converges to the true median for
    symmetric noise; with thresholding, the boundary atoms sit far from
    the data and do not move the median unless the clamp probability
    approaches 1/2.
    """

    name = "median"

    def evaluate(self, data: np.ndarray) -> float:
        return float(np.median(self._check(data)))
