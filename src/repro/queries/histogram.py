"""Histogram query: bucketed frequency estimation over a sensor range.

The natural generalization of the paper's counting query: split the
declared range into ``n_buckets`` and estimate each bucket's occupancy.
Two routes are provided:

* :class:`HistogramQuery` — the paper-style naive route: bucket the
  *noised numeric values*.  Laplace noise smears mass across buckets, so
  narrow buckets lose badly.
* :func:`histogram_via_krr` — the categorical route: each device
  bucketizes its own raw value and reports the bucket through k-ary
  randomized response (:class:`~repro.privacy.categorical.KRandomizedResponse`),
  which the analyst debiases.  For histogram-shaped questions this is the
  standard and far more accurate construction at the same ε — the test
  suite quantifies the gap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import SensorSpec
from ..privacy.categorical import KRandomizedResponse
from .base import Query

__all__ = ["HistogramQuery", "bucketize", "histogram_via_krr"]


def bucketize(values: np.ndarray, sensor: SensorSpec, n_buckets: int) -> np.ndarray:
    """Map values to bucket indices ``0..n_buckets-1`` over the range."""
    if n_buckets < 2:
        raise ConfigurationError("need at least two buckets")
    values = np.asarray(values, dtype=float)
    width = sensor.d / n_buckets
    idx = np.floor((values - sensor.m) / width).astype(np.int64)
    return np.clip(idx, 0, n_buckets - 1)


class HistogramQuery(Query):
    """Bucket-occupancy *fractions* of a data vector.

    ``evaluate`` returns the ℓ1 norm is not meaningful as a scalar, so the
    Query interface's scalar is the occupancy of ``focus_bucket``; use
    :meth:`frequencies` for the full vector.
    """

    name = "histogram"

    def __init__(self, sensor: SensorSpec, n_buckets: int = 8, focus_bucket: int = 0):
        if not 0 <= focus_bucket < n_buckets:
            raise ConfigurationError("focus_bucket out of range")
        self.sensor = sensor
        self.n_buckets = n_buckets
        self.focus_bucket = focus_bucket

    def frequencies(self, data: np.ndarray) -> np.ndarray:
        """Occupancy fraction per bucket (clipping data into the range)."""
        data = self._check(data)
        idx = bucketize(self.sensor.clip(data), self.sensor, self.n_buckets)
        counts = np.bincount(idx, minlength=self.n_buckets)
        return counts / counts.sum()

    def evaluate(self, data: np.ndarray) -> float:
        return float(self.frequencies(data)[self.focus_bucket])

    def l1_error(self, noisy: np.ndarray, raw: np.ndarray) -> float:
        """Total-variation-style error between the two histograms."""
        return float(np.abs(self.frequencies(noisy) - self.frequencies(raw)).sum())


def histogram_via_krr(
    raw: np.ndarray,
    sensor: SensorSpec,
    n_buckets: int,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """LDP histogram through the categorical channel (debiased).

    Each record is bucketized *locally* and the bucket index passes
    through ε-LDP k-ary randomized response; the return value is the
    debiased frequency vector.
    """
    idx = bucketize(np.asarray(raw, dtype=float), sensor, n_buckets)
    krr = KRandomizedResponse(n_buckets, epsilon, rng=rng)
    return krr.estimate_frequencies(krr.privatize(idx))
