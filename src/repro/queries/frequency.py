"""Server half of the categorical LDP protocol: aggregate → estimate.

The client half (:class:`~repro.mechanisms.categorical.
CategoricalMechanism`) produces perturbed reports and publishes the
exact realized support channel ``(p, q)``; this module inverts it.  For
any frequency oracle the per-category support count ``c_v`` has

    E[c_v] = n·(f_v·p + (1 - f_v)·q),

so the linear inversion

    f̂_v = (c_v/n - q) / (p - q)

is unbiased for every category simultaneously, and because ``c_v`` is a
sum of independent Bernoulli supports its variance is closed-form:

    Var[f̂_v] = [f_v·p(1-p) + (1 - f_v)·q(1-q)] / (n·(p - q)²).

For OUE/OLH at their ideal calibration (p = 1/2, q = 1/(e^ε + 1)) and
rare items (f → 0) this is the literature's ``4e^ε/(n(e^ε - 1)²)``
(:func:`ideal_oracle_variance`).  All estimates here use the *realized*
dyadic ``(p, q)``, so they stay unbiased under finite precision.

Counts are plain int64 vectors, so the aggregate stage is associative:
shard batches fold by addition (:func:`aggregate_reports` accepts a
``user_offset`` for protocols with per-user public randomness), and the
streaming :class:`~repro.aggregation.AggregationServer` accumulates them
in O(d) memory via ``submit_counts``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.categorical import CategoricalMechanism

__all__ = [
    "FrequencyEstimate",
    "aggregate_reports",
    "estimate_frequencies",
    "estimate_from_counts",
    "frequency_variance",
    "ideal_oracle_variance",
]


def frequency_variance(n: int, p: float, q: float, f: float = 0.0) -> float:
    """Closed-form ``Var[f̂_v]`` of the unbiased support-count estimator.

    ``[f·p(1-p) + (1-f)·q(1-q)] / (n·(p-q)²)`` — exact for independent
    reports through a support channel with keep/cross probabilities
    ``(p, q)``.  ``f`` is the (unknown) true frequency; ``f = 0`` gives
    the rare-item variance usually quoted for oracle comparison.
    """
    if n <= 0:
        raise ConfigurationError("variance needs a positive report count")
    if not 0.0 <= q < p <= 1.0:
        raise ConfigurationError("support channel needs 0 <= q < p <= 1")
    if not 0.0 <= f <= 1.0:
        raise ConfigurationError("true frequency must be in [0, 1]")
    num = f * p * (1.0 - p) + (1.0 - f) * q * (1.0 - q)
    return num / (n * (p - q) ** 2)


def ideal_oracle_variance(n: int, epsilon: float) -> float:
    """Ideal OUE/OLH rare-item variance ``4e^ε / (n·(e^ε - 1)²)``.

    The benchmark yardstick: the realized dyadic channels approach it
    from above as the URNG grid refines.
    """
    if n <= 0:
        raise ConfigurationError("variance needs a positive report count")
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    e = math.exp(epsilon)
    return 4.0 * e / (n * (e - 1.0) ** 2)


@dataclass
class FrequencyEstimate:
    """Unbiased per-category frequency estimates with exact variances.

    ``frequencies`` are the raw linear inversions — individually
    unbiased, hence occasionally negative for rare categories; use
    :meth:`normalized` when a proper distribution is needed (at the cost
    of bias).  ``variances`` plug the estimates themselves in for the
    unknown true ``f`` (clipped to [0, 1]), which is the standard
    plug-in error bar.
    """

    #: Per-category unbiased estimates ``f̂_v``.
    frequencies: np.ndarray
    #: Per-category support counts ``c_v``.
    counts: np.ndarray
    #: Number of user reports aggregated.
    n: int
    #: Realized support channel.
    p: float
    q: float
    #: Oracle arm name ("OUE", "OLH", ...).
    oracle: str = "categorical"
    #: Plug-in closed-form variances (filled in __post_init__).
    variances: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        self.frequencies = np.asarray(self.frequencies, dtype=float)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.variances is None:
            plug = np.clip(self.frequencies, 0.0, 1.0)
            self.variances = np.array(
                [frequency_variance(self.n, self.p, self.q, float(f)) for f in plug]
            )

    @property
    def n_categories(self) -> int:
        return int(self.frequencies.size)

    def std_errors(self) -> np.ndarray:
        """Per-category plug-in standard errors ``sqrt(Var[f̂_v])``."""
        return np.sqrt(self.variances)

    def normalized(self) -> np.ndarray:
        """Clip to [0, 1] and renormalize to a proper distribution."""
        clipped = np.clip(self.frequencies, 0.0, None)
        total = clipped.sum()
        if total <= 0.0:
            return np.full_like(clipped, 1.0 / clipped.size)
        return clipped / total

    def top_k(self, k: int) -> np.ndarray:
        """Indices of the ``k`` largest estimates, largest first."""
        if k <= 0:
            raise ConfigurationError("top_k needs k >= 1")
        k = min(k, self.frequencies.size)
        order = np.argsort(self.frequencies, kind="stable")[::-1]
        return order[:k]


def aggregate_reports(
    mechanism: CategoricalMechanism,
    reports: np.ndarray,
    user_offset: int = 0,
) -> Tuple[np.ndarray, int]:
    """Aggregate stage: reports → ``(support counts, n)``.

    A thin naming seam over ``mechanism.support_counts`` that also
    returns the report count, in the shape ``submit_counts`` and
    :func:`estimate_from_counts` consume.  Associative: summing the
    counts (and ``n``) of disjoint batches equals aggregating the
    concatenation, which is what makes the sharded path bit-identical.
    """
    counts = mechanism.support_counts(reports, user_offset=user_offset)
    return np.asarray(counts, dtype=np.int64), mechanism.n_reports(reports)


def estimate_from_counts(
    mechanism: CategoricalMechanism,
    counts: np.ndarray,
    n: int,
) -> FrequencyEstimate:
    """Estimate stage: pre-aggregated support counts → frequencies.

    This is the entry point for streaming/sharded aggregation, where the
    raw reports were never retained — only the O(d) count vector.
    """
    counts = np.asarray(counts, dtype=np.int64).reshape(-1)
    if counts.size != mechanism.n_categories:
        raise ConfigurationError(
            f"expected {mechanism.n_categories} support counts, got {counts.size}"
        )
    if n <= 0:
        raise ConfigurationError("estimation needs a positive report count")
    p, q = mechanism.estimator_params()
    if not q < p:
        raise ConfigurationError("degenerate support channel: p <= q")
    frequencies = (counts / float(n) - q) / (p - q)
    return FrequencyEstimate(
        frequencies=frequencies,
        counts=counts,
        n=int(n),
        p=float(p),
        q=float(q),
        oracle=mechanism.name,
    )


def estimate_frequencies(
    mechanism: CategoricalMechanism,
    reports: np.ndarray,
    user_offset: int = 0,
) -> FrequencyEstimate:
    """aggregate ∘ estimate: a report batch → frequency estimates."""
    counts, n = aggregate_reports(mechanism, reports, user_offset=user_offset)
    return estimate_from_counts(mechanism, counts, n)
