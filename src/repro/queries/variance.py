"""Variance query."""

from __future__ import annotations

import numpy as np

from .base import Query

__all__ = ["VarianceQuery"]


class VarianceQuery(Query):
    """Population variance.

    The naive estimator (used by the paper's tables) is biased upward by
    the noise variance ``2λ²``; the debiased companion estimator lives in
    :mod:`repro.queries.estimators`.
    """

    name = "variance"

    def evaluate(self, data: np.ndarray) -> float:
        return float(np.var(self._check(data)))
