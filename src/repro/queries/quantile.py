"""Quantile query (generalizes the paper's median query)."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import Query

__all__ = ["QuantileQuery"]


class QuantileQuery(Query):
    """The ``q``-th sample quantile.

    ``QuantileQuery(0.5)`` is the paper's median query; the tails
    (e.g. q = 0.9) are noticeably harder under LDP noise because the
    estimate sits where the noised distribution's shape differs most
    from the raw one — the guarded arms' truncation actually *helps*
    there by removing the unbounded smear.
    """

    def __init__(self, q: float = 0.5):
        if not 0.0 < q < 1.0:
            raise ConfigurationError("q must be in (0, 1)")
        self.q = q
        self.name = f"quantile-{q:g}"

    def evaluate(self, data: np.ndarray) -> float:
        return float(np.quantile(self._check(data), self.q))
