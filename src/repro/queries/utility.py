"""Utility (MAE) measurement harness — the engine behind Tables II–V.

For a dataset and a mechanism, the paper presents every entry to the
DP-Box repeatedly (500×), applies each statistical query to the noised
data, and reports the mean absolute error ± its standard deviation
against the raw-data query output, plus the relative error normalized to
the data range.  :func:`measure_utility` reproduces that protocol with a
configurable trial count.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import LocalMechanism
from .base import Query
from .counting import CountingQuery

__all__ = ["UtilityResult", "measure_utility", "mae_trials"]


@dataclasses.dataclass(frozen=True)
class UtilityResult:
    """MAE of one (mechanism, query, dataset) cell."""

    query: str
    mechanism: str
    mae: float
    mae_std: float
    relative_error: float
    n_trials: int

    def cell(self) -> str:
        """Table-II-style cell: ``mae±std (rel%)``."""
        return f"{self.mae:.3g}±{self.mae_std:.2g} ({100 * self.relative_error:.2g}%)"


def mae_trials(
    mechanism: LocalMechanism,
    data: np.ndarray,
    query: Query,
    n_trials: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Absolute query errors over independent privatization trials."""
    if n_trials < 1:
        raise ConfigurationError("need at least one trial")
    data = np.asarray(data, dtype=float).ravel()
    raw_value = query.evaluate(data)
    errors = np.empty(n_trials)
    for t in range(n_trials):
        noisy = mechanism.privatize(data)
        errors[t] = abs(query.evaluate(noisy) - raw_value)
    _ = rng  # trial randomness lives inside the mechanism's own source
    return errors


def measure_utility(
    mechanism: LocalMechanism,
    data: np.ndarray,
    queries: Sequence[Query],
    n_trials: int = 20,
) -> Dict[str, UtilityResult]:
    """MAE ± std and range-relative error for each query.

    Counting queries without a pinned threshold are pinned to the raw
    data's mid-range so the predicate is identical across trials (the
    paper's protocol — the query is fixed, only the noise varies).
    """
    data = np.asarray(data, dtype=float).ravel()
    if data.size == 0:
        raise ConfigurationError("empty dataset")
    data_range = float(data.max() - data.min())
    results: Dict[str, UtilityResult] = {}
    for query in queries:
        q = query
        if isinstance(q, CountingQuery) and q.threshold is None:
            q = q.with_threshold(0.5 * (float(data.min()) + float(data.max())))
        errors = mae_trials(mechanism, data, q, n_trials=n_trials)
        mae = float(errors.mean())
        denominator = data_range if data_range > 0 else 1.0
        if isinstance(q, CountingQuery):
            denominator = float(data.size)  # counts normalize by N, not range
        elif q.name == "variance":
            denominator = denominator**2  # variance is in squared units
        results[query.name] = UtilityResult(
            query=query.name,
            mechanism=mechanism.name,
            mae=mae,
            mae_std=float(errors.std()),
            relative_error=mae / denominator,
            n_trials=n_trials,
        )
    return results
