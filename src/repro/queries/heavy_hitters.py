"""Heavy hitters over a large domain: the Prefix Extending Method (PEM).

When the domain is too large to estimate every frequency (``d = 2^B``
for B in the tens), the standard LDP workload finds the top-k *heavy
hitters* by growing them one prefix chunk at a time (Wang et al.'s PEM;
see PAPERS.md).  The population is split into one group per level; group
``j`` reports the ``l_j``-bit prefix of its value through a fresh
frequency oracle whose domain is only the *candidate* set — the top-k
survivors of the previous level extended by every ``η``-bit suffix, plus
one explicit "other" bucket for prefixes that fell off the frontier.
Each user reports exactly once, so each report spends the full per-user
ε (no composition across levels).

The whole cascade rides the four-stage protocol: every level is an
ordinary :func:`~repro.mechanisms.make_oracle` arm reporting through the
release pipeline and estimated by
:func:`~repro.queries.frequency.estimate_frequencies`, so heavy hitters
inherit ReleaseEvents, budget charging and the dplint randomness audit
without any new privacy surface.  Group membership and per-level URNG
sources are derived deterministically from one ``SeedSequence``, so a
fixed seed gives a bit-identical cascade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.oracles import make_oracle
from ..rng.urng import SplitStreamSource, shard_seed_sequences
from .frequency import FrequencyEstimate, estimate_frequencies

__all__ = ["HeavyHitterLevel", "HeavyHittersResult", "pem_heavy_hitters"]


@dataclass
class HeavyHitterLevel:
    """One level of the prefix cascade (diagnostics, not estimates)."""

    #: Prefix length (bits) reported at this level.
    prefix_bits: int
    #: Candidate prefixes scored (excludes the "other" bucket).
    n_candidates: int
    #: Users in this level's group.
    n_users: int
    #: Surviving candidate prefixes, best first.
    survivors: np.ndarray
    #: Estimated frequency mass that fell off the frontier.
    other_mass: float


@dataclass
class HeavyHittersResult:
    """Top-k heavy hitters with final-level frequency estimates."""

    #: Identified heavy-hitter values (full ``domain_bits`` wide), best first.
    items: np.ndarray
    #: Unbiased frequency estimates for ``items`` (final level's group).
    frequencies: np.ndarray
    #: Plug-in standard errors aligned with ``frequencies``.
    std_errors: np.ndarray
    #: Per-level diagnostics.
    levels: List[HeavyHitterLevel]
    #: Final level's full estimate (candidates + "other" bucket).
    final_estimate: FrequencyEstimate


def _level_plan(domain_bits: int, eta: int) -> List[int]:
    """Prefix lengths per level: η, 2η, ..., domain_bits."""
    plan = list(range(eta, domain_bits, eta))
    plan.append(domain_bits)
    return plan


def _check_domain(values: np.ndarray, domain_bits: int) -> np.ndarray:
    values = np.asarray(values)
    if values.size == 0:
        raise ConfigurationError("heavy hitters need a nonempty population")
    if not np.issubdtype(values.dtype, np.integer):
        raise ConfigurationError("heavy-hitter values must be integers")
    values = values.reshape(-1).astype(np.int64)
    if values.min() < 0 or values.max() >= (1 << domain_bits):
        raise ConfigurationError(
            f"values must be in 0..2^{domain_bits}-1 for the prefix domain"
        )
    return values


def pem_heavy_hitters(
    values: np.ndarray,
    domain_bits: int,
    epsilon: float,
    k: int,
    oracle: str = "olh",
    eta: int = 2,
    seed=None,
    pipeline=None,
    accounting=None,
) -> HeavyHittersResult:
    """Find the top-``k`` values of a ``2^domain_bits`` domain under LDP.

    ``values`` is the raw population (one integer per user); each user
    contributes one report at one level, privatized with the full
    ``epsilon``.  ``oracle`` names the per-level frequency-oracle arm
    (``"olh"`` default — the candidate domains grow to ``k·2^η + 1``).
    ``seed`` feeds one ``SeedSequence`` from which every level's URNG
    source is spawned, making the cascade reproducible bit for bit.
    """
    if not 1 <= eta <= 16:
        raise ConfigurationError("eta must be in 1..16")
    if domain_bits < 1 or domain_bits > 62:
        raise ConfigurationError("domain_bits must be in 1..62")
    if k < 1:
        raise ConfigurationError("need k >= 1")
    values = _check_domain(values, domain_bits)
    plan = _level_plan(domain_bits, eta)
    n_levels = len(plan)
    if values.size < n_levels:
        raise ConfigurationError(
            f"population of {values.size} cannot cover {n_levels} PEM levels"
        )

    # Per-level URNG sub-seeds come from the audited derivation seam
    # (the same one the sharded fleet uses), keeping the entropy supply
    # greppable; levels are the "shards" of the cascade.
    level_seeds = shard_seed_sequences(seed, n_levels)

    # Deterministic contiguous grouping: group j = users in
    # [bounds[j], bounds[j+1]).  Each user reports exactly once.
    bounds = np.linspace(0, values.size, n_levels + 1).astype(np.int64)

    survivors = np.zeros(1, dtype=np.int64)  # the empty prefix
    prev_bits = 0
    levels: List[HeavyHitterLevel] = []
    final_estimate: Optional[FrequencyEstimate] = None

    for j, bits in enumerate(plan):
        step = bits - prev_bits
        # Candidates: every survivor extended by every step-bit suffix.
        suffixes = np.arange(1 << step, dtype=np.int64)
        candidates = ((survivors[:, None] << step) | suffixes[None, :]).reshape(-1)
        d = candidates.size + 1  # + the "other" bucket
        other = candidates.size

        group = values[bounds[j] : bounds[j + 1]]
        prefixes = group >> (domain_bits - bits)
        # Map each user's prefix to its candidate index, or "other".
        order = np.argsort(candidates, kind="stable")
        pos = np.searchsorted(candidates, prefixes, sorter=order)
        pos = np.minimum(pos, candidates.size - 1)
        hit = candidates[order[pos]] == prefixes
        cats = np.where(hit, order[pos], other).astype(np.int64)

        arm = make_oracle(
            oracle,
            d,
            epsilon,
            source=SplitStreamSource(level_seeds[j]),
            **({"pipeline": pipeline} if pipeline is not None else {}),
        )
        user_offset = int(bounds[j])
        reports = arm.report(
            cats, accounting=accounting, user_offset=user_offset,
            channel=f"pem/level{j}",
        )
        est = estimate_frequencies(arm, reports, user_offset=user_offset)

        cand_freq = est.frequencies[:other]
        keep = np.argsort(cand_freq, kind="stable")[::-1][: min(k, other)]
        survivors = candidates[keep]
        levels.append(
            HeavyHitterLevel(
                prefix_bits=bits,
                n_candidates=int(other),
                n_users=int(group.size),
                survivors=survivors.copy(),
                other_mass=float(est.frequencies[other]),
            )
        )
        final_estimate = est
        final_keep = keep
        prev_bits = bits

    assert final_estimate is not None
    return HeavyHittersResult(
        items=survivors,
        frequencies=final_estimate.frequencies[final_keep],
        std_errors=final_estimate.std_errors()[final_keep],
        levels=levels,
        final_estimate=final_estimate,
    )
