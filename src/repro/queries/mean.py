"""Mean query."""

from __future__ import annotations

import numpy as np

from .base import Query

__all__ = ["MeanQuery"]


class MeanQuery(Query):
    """Arithmetic mean.

    Laplace LDP noise is zero-mean, so the mean of privatized data is an
    unbiased estimate of the true mean and its error shrinks as
    ``O(λ/√N)`` — the effect Fig. 15 sweeps.  Thresholding's boundary
    atoms are symmetric around the range, so the estimator stays
    approximately unbiased for centered data but can shift for skewed
    data (Section VI-B).
    """

    name = "mean"

    def evaluate(self, data: np.ndarray) -> float:
        return float(np.mean(self._check(data)))
