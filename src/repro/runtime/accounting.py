"""Budget-charge policies for the release pipeline.

The pipeline itself is budget-agnostic: after the guard stage it hands
the guarded output codes to an *accounting policy*, which decides per
sample whether the fresh code is affordable (charge and release), must
be replaced by a cached code (charge nothing), or must be refused
(:class:`repro.errors.BudgetExhaustedError`).  Policies are duck-typed —
anything with ``charge(codes) -> ChargeOutcome`` works — so the pipeline
never imports the budget layers it instruments:

* :class:`NoCharge` — unaccounted release (pure mechanism evaluation).
* :class:`FlatCharge` — fixed loss per sample against a
  :class:`~repro.privacy.accountant.BudgetAccountant` (fleet devices).
* :class:`TableCharge` — output-adaptive segment loss (Algorithm 1)
  against a shared accountant (multi-sensor DP-Box).
* :class:`EngineCharge` — delegate to a cycle-level
  :class:`~repro.core.budget.BudgetEngine` (DP-Box FSM).
* :class:`ArrayCharge` — vectorized per-device budgets for the batched
  fleet epoch; NumPy all the way down.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import BudgetExhaustedError

__all__ = [
    "ChargeOutcome",
    "ReplayCache",
    "NoCharge",
    "FlatCharge",
    "TableCharge",
    "EngineCharge",
    "ArrayCharge",
]

_TOL = 1e-12  # same affordability tolerance as BudgetAccountant.can_spend


@dataclasses.dataclass
class ChargeOutcome:
    """Result of charging one guarded batch against a budget."""

    codes: np.ndarray
    """Released codes — fresh where affordable, cached where replayed."""

    charged: np.ndarray
    """Per-sample loss actually charged (0 for cache replays)."""

    cache_hits: np.ndarray
    """Boolean mask of samples served from a cache."""

    budget_remaining: Optional[float]
    """Budget left after the charge, or ``None`` when unaccounted."""


class ReplayCache:
    """Single-slot cache of the last released code (per device/channel).

    Replaying a cached, already-paid-for output leaks nothing new, which
    is how the DP-Box keeps serving after exhaustion (paper Section
    III-B); ``None`` means nothing has been released yet.
    """

    __slots__ = ("code",)

    def __init__(self) -> None:
        self.code: Optional[float] = None


class NoCharge:
    """Release without budget accounting (analysis / unaccounted paths)."""

    def charge(self, codes: np.ndarray) -> ChargeOutcome:
        return ChargeOutcome(
            codes=codes,
            charged=np.zeros(codes.shape[0], dtype=float),
            cache_hits=np.zeros(codes.shape[0], dtype=bool),
            budget_remaining=None,
        )


class FlatCharge:
    """Charge a fixed per-sample loss against a ``BudgetAccountant``.

    When the accountant refuses and ``cache`` holds a previous release,
    the cached code is replayed at zero charge; with an empty cache the
    refusal propagates as :class:`BudgetExhaustedError`.
    """

    def __init__(self, accountant, loss: float, cache: Optional[ReplayCache] = None):
        self.accountant = accountant
        self.loss = float(loss)
        self.cache = cache

    def charge(self, codes: np.ndarray) -> ChargeOutcome:
        out = np.array(codes, copy=True)
        charged = np.zeros(codes.shape[0], dtype=float)
        hits = np.zeros(codes.shape[0], dtype=bool)
        for i in range(codes.shape[0]):
            if self.accountant.can_spend(self.loss):
                self.accountant.spend(self.loss)
                charged[i] = self.loss
                if self.cache is not None:
                    self.cache.code = out[i]
            elif self.cache is not None and self.cache.code is not None:
                out[i] = self.cache.code
                hits[i] = True
            else:
                raise BudgetExhaustedError(
                    f"budget cannot cover loss {self.loss:.4g} "
                    f"(remaining {self.accountant.remaining:.4g}) and no cached output"
                )
        return ChargeOutcome(out, charged, hits, float(self.accountant.remaining))


class TableCharge:
    """Output-adaptive segment charging (paper Algorithm 1).

    The loss depends on *which* output code was drawn — cheap central
    segments charge the base loss, tail segments charge more — so the
    charge can only be computed after the guard stage.  Used by the
    multi-sensor box: many channels, one shared accountant, one
    :class:`ReplayCache` per channel.
    """

    def __init__(self, accountant, table, cache: Optional[ReplayCache] = None):
        self.accountant = accountant
        self.table = table
        self.cache = cache

    def charge(self, codes: np.ndarray) -> ChargeOutcome:
        out = np.array(codes, copy=True)
        charged = np.zeros(codes.shape[0], dtype=float)
        hits = np.zeros(codes.shape[0], dtype=bool)
        for i in range(codes.shape[0]):
            loss = self.table.loss_for_output(int(out[i]))
            if self.accountant.can_spend(loss):
                self.accountant.spend(loss)
                charged[i] = loss
                if self.cache is not None:
                    self.cache.code = out[i]
            elif self.cache is not None and self.cache.code is not None:
                out[i] = self.cache.code
                hits[i] = True
            else:
                raise BudgetExhaustedError(
                    f"shared budget cannot cover loss {loss:.4g} "
                    f"(remaining {self.accountant.remaining:.4g}) and no cached output"
                )
        return ChargeOutcome(out, charged, hits, float(self.accountant.remaining))


class EngineCharge:
    """Delegate to a cycle-level :class:`~repro.core.budget.BudgetEngine`.

    The engine owns segment lookup, replenishment scheduling, and its
    own output cache; this adapter just folds its per-code decision into
    the common :class:`ChargeOutcome` shape so DP-Box noisings appear in
    the same event stream as mechanism-level releases.
    """

    def __init__(self, engine):
        self.engine = engine

    def charge(self, codes: np.ndarray) -> ChargeOutcome:
        out = np.array(codes, copy=True)
        charged = np.zeros(codes.shape[0], dtype=float)
        hits = np.zeros(codes.shape[0], dtype=bool)
        for i in range(codes.shape[0]):
            decision = self.engine.submit(int(out[i]))
            out[i] = decision.k_out
            charged[i] = decision.charged
            hits[i] = decision.from_cache
        return ChargeOutcome(out, charged, hits, float(self.engine.remaining))


class ArrayCharge:
    """Vectorized per-device budgets for the batched fleet epoch.

    ``remaining`` and ``cached`` are fleet-wide arrays (one entry per
    device; ``cached`` uses NaN for "nothing released yet").  ``index``
    selects the devices reporting this epoch, in the same order as the
    codes handed to :meth:`charge`.  Decisions are made with array ops —
    no per-device Python loop — and match :class:`FlatCharge` exactly,
    which is what makes the scalar and batched fleet paths bit-identical.
    """

    def __init__(
        self,
        remaining: np.ndarray,
        cached: np.ndarray,
        loss: float,
        index: Optional[np.ndarray] = None,
    ):
        self.remaining = remaining
        self.cached = cached
        self.loss = float(loss)
        self.index = (
            np.arange(remaining.shape[0]) if index is None else np.asarray(index)
        )

    def charge(self, codes: np.ndarray) -> ChargeOutcome:
        idx = self.index
        affordable = self.remaining[idx] + _TOL >= self.loss
        has_cache = ~np.isnan(self.cached[idx])
        refused = ~affordable & ~has_cache
        if np.any(refused):
            dev = int(idx[np.flatnonzero(refused)[0]])
            raise BudgetExhaustedError(
                f"device {dev}: budget cannot cover loss {self.loss:.4g} "
                f"(remaining {self.remaining[dev]:.4g}) and no cached output"
            )
        out = np.where(affordable, codes, self.cached[idx]).astype(codes.dtype)
        self.remaining[idx[affordable]] -= self.loss
        self.cached[idx[affordable]] = codes[affordable]
        charged = np.where(affordable, self.loss, 0.0)
        return ChargeOutcome(
            out, charged, ~affordable, float(self.remaining.sum())
        )
