"""Pluggable event sinks for the release pipeline.

A sink is anything with an ``emit(event)`` method.  Three are provided:

* :class:`RingBufferSink` — bounded in-memory buffer for tests and the
  timing attack (capture the last N events, inspect, done).
* :class:`JsonlSink` — append events as JSON lines for offline replay
  (``python -m repro trace --replay trace.jsonl``).
* :class:`CounterSink` — cheap running aggregates (releases, draws,
  cache hits, charged loss) per mechanism; backs ``repro trace``.
"""

from __future__ import annotations

import collections
import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from ..errors import ConfigurationError
from .events import ReleaseEvent

__all__ = [
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "CounterSink",
    "read_events_jsonl",
]


class EventSink:
    """Base sink: receives every event the pipeline emits."""

    def emit(self, event: ReleaseEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; default is a no-op."""


class RingBufferSink(EventSink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._buf: collections.deque = collections.deque(maxlen=capacity)

    def emit(self, event: ReleaseEvent) -> None:
        self._buf.append(event)

    @property
    def events(self) -> List[ReleaseEvent]:
        """Buffered events, oldest first."""
        return list(self._buf)

    def clear(self) -> None:
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)


class JsonlSink(EventSink):
    """Write each event as one JSON line to a file or file-like object.

    ``append=True`` opens path targets in append mode, so successive
    sinks — per-shard trace files merged shard-by-shard, or one trace
    grown across several runs — extend the file instead of truncating
    it.  Each line is still one complete event, so
    :func:`read_events_jsonl` reads an appended file unchanged.
    """

    def __init__(self, target: Union[str, Path, IO[str]], append: bool = False):
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(target, "a" if append else "w", encoding="utf-8")
            self._owns = True
        self.n_written = 0

    def emit(self, event: ReleaseEvent) -> None:
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.n_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CounterSink(EventSink):
    """Running aggregates over the event stream (O(1) memory)."""

    def __init__(self) -> None:
        self.n_events = 0
        self.n_samples = 0
        self.n_draws = 0
        self.n_cache_hits = 0
        self.n_exhausted = 0
        self.charged_total = 0.0
        self.max_rounds_used = 0
        self.per_mechanism: Dict[str, Dict[str, float]] = {}
        #: Events/draws by sampling kernel (``codebook`` / ``live`` /
        #: ``unreported`` for arms that don't have one).
        self.per_kernel: Dict[str, Dict[str, int]] = {}
        self.last_budget_remaining: Optional[float] = None

    def emit(self, event: ReleaseEvent) -> None:
        self.n_events += 1
        self.n_samples += event.batch
        self.n_draws += event.draws
        self.n_cache_hits += event.cache_hits
        self.n_exhausted += int(event.exhausted)
        self.charged_total += event.charged
        self.max_rounds_used = max(self.max_rounds_used, event.max_rounds_used)
        if event.budget_remaining is not None:
            self.last_budget_remaining = event.budget_remaining
        per = self.per_mechanism.setdefault(
            event.mechanism,
            {"events": 0, "samples": 0, "draws": 0, "cache_hits": 0, "charged": 0.0},
        )
        per["events"] += 1
        per["samples"] += event.batch
        per["draws"] += event.draws
        per["cache_hits"] += event.cache_hits
        per["charged"] += event.charged
        kern = self.per_kernel.setdefault(
            event.kernel or "unreported", {"events": 0, "draws": 0}
        )
        kern["events"] += 1
        kern["draws"] += event.draws

    def merge(self, other: "CounterSink") -> "CounterSink":
        """Fold another counter's aggregates into this one (in place).

        The sharded fleet runner gives every worker its own
        :class:`CounterSink` and merges them at the coordinator in shard
        order; merging is exact because every aggregate is either a sum,
        a max, or a last-write (``last_budget_remaining``, where
        ``other`` is the later shard).  Returns ``self`` so merges
        chain: ``reduce(CounterSink.merge, shard_counters, total)``.
        """
        self.n_events += other.n_events
        self.n_samples += other.n_samples
        self.n_draws += other.n_draws
        self.n_cache_hits += other.n_cache_hits
        self.n_exhausted += other.n_exhausted
        self.charged_total += other.charged_total
        self.max_rounds_used = max(self.max_rounds_used, other.max_rounds_used)
        if other.last_budget_remaining is not None:
            self.last_budget_remaining = other.last_budget_remaining
        for mech, theirs in other.per_mechanism.items():
            mine = self.per_mechanism.setdefault(
                mech,
                {"events": 0, "samples": 0, "draws": 0, "cache_hits": 0, "charged": 0.0},
            )
            for field in theirs:
                mine[field] = mine.get(field, 0) + theirs[field]
        for kern, theirs in other.per_kernel.items():
            mine = self.per_kernel.setdefault(kern, {"events": 0, "draws": 0})
            for field in theirs:
                mine[field] = mine.get(field, 0) + theirs[field]
        return self

    def summary(self) -> Dict[str, object]:
        """Aggregate snapshot as a plain dict (JSON-ready)."""
        return {
            "events": self.n_events,
            "samples": self.n_samples,
            "draws": self.n_draws,
            "cache_hits": self.n_cache_hits,
            "exhausted": self.n_exhausted,
            "charged_total": self.charged_total,
            "max_rounds_used": self.max_rounds_used,
            "budget_remaining": self.last_budget_remaining,
            "per_mechanism": self.per_mechanism,
            "per_kernel": self.per_kernel,
        }


def read_events_jsonl(path: Union[str, Path]) -> List[ReleaseEvent]:
    """Load a JSONL trace written by :class:`JsonlSink`."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(ReleaseEvent.from_dict(json.loads(line)))
    return events
