"""Pluggable event sinks for the release pipeline.

A sink is anything with an ``emit(event)`` method.  Three are provided:

* :class:`RingBufferSink` — bounded in-memory buffer for tests and the
  timing attack (capture the last N events, inspect, done).
* :class:`JsonlSink` — append events as JSON lines for offline replay
  (``python -m repro trace --replay trace.jsonl``).
* :class:`CounterSink` — cheap running aggregates (releases, draws,
  cache hits, charged loss) per mechanism; backs ``repro trace``.
"""

from __future__ import annotations

import collections
import json
import logging
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from ..errors import ConfigurationError
from .events import IngestEvent, ReleaseEvent

__all__ = [
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "CounterSink",
    "read_events_jsonl",
]

_log = logging.getLogger(__name__)

#: Either trace stream: a release, or an ingestion admission decision.
Event = Union[ReleaseEvent, IngestEvent]


class EventSink:
    """Base sink: receives every event the pipeline emits."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; default is a no-op."""


class RingBufferSink(EventSink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._buf: collections.deque = collections.deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._buf.append(event)

    @property
    def events(self) -> List[Event]:
        """Buffered events, oldest first."""
        return list(self._buf)

    def clear(self) -> None:
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)


class JsonlSink(EventSink):
    """Write each event as one JSON line to a file or file-like object.

    ``append=True`` opens path targets in append mode, so successive
    sinks — per-shard trace files merged shard-by-shard, or one trace
    grown across several runs — extend the file instead of truncating
    it.  Each line is still one complete event, so
    :func:`read_events_jsonl` reads an appended file unchanged.

    Every line is flushed to the OS as it is written: a worker killed
    between events leaves at most a partial *final* line behind (the
    kernel already has every completed one), never a trace silently
    truncated at the interpreter's buffer boundary.
    :func:`read_events_jsonl` tolerates — and reports — that one
    partial tail line.  The sink is a context manager and ``close()``
    is idempotent; emitting after close is a typed error rather than a
    cryptic ``ValueError`` from a closed file object.
    """

    def __init__(self, target: Union[str, Path, IO[str]], append: bool = False):
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(target, "a" if append else "w", encoding="utf-8")
            self._owns = True
        self._closed = False
        self.n_written = 0

    def emit(self, event: Event) -> None:
        if self._closed:
            raise ConfigurationError("JsonlSink is closed; cannot emit")
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self._fh.flush()
        self.n_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.flush()
        finally:
            if self._owns:
                self._fh.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CounterSink(EventSink):
    """Running aggregates over the event stream (O(1) memory).

    Counts both streams: release events feed the draw/charge aggregates,
    ingestion events feed the admission aggregates
    (admitted/blocked/repaired/busy report totals, the high-water queue
    depth, and a bounded latency reservoir for p50/p99 tail estimates).
    """

    #: Latency reservoir capacity — enough for honest tail percentiles,
    #: small enough to keep the sink effectively O(1).
    LATENCY_RESERVOIR = 8192

    def __init__(self) -> None:
        self.n_events = 0
        self.n_samples = 0
        self.n_draws = 0
        self.n_cache_hits = 0
        self.n_exhausted = 0
        self.charged_total = 0.0
        self.max_rounds_used = 0
        self.per_mechanism: Dict[str, Dict[str, float]] = {}
        #: Events/draws by sampling kernel (``codebook`` / ``live`` /
        #: ``unreported`` for arms that don't have one).
        self.per_kernel: Dict[str, Dict[str, int]] = {}
        self.last_budget_remaining: Optional[float] = None
        #: Ingestion admission aggregates (see :class:`IngestEvent`).
        self.n_ingest_events = 0
        self.reports_admitted = 0
        self.reports_repaired = 0
        self.reports_blocked = 0
        self.n_busy = 0
        self.n_ingest_errors = 0
        self.per_verdict: Dict[str, int] = {}
        self.per_guard_blocked: Dict[str, int] = {}
        self.max_queue_depth = 0
        self._latencies_us: collections.deque = collections.deque(
            maxlen=self.LATENCY_RESERVOIR
        )

    def emit(self, event: Event) -> None:
        if isinstance(event, IngestEvent):
            self._emit_ingest(event)
            return
        self.n_events += 1
        self.n_samples += event.batch
        self.n_draws += event.draws
        self.n_cache_hits += event.cache_hits
        self.n_exhausted += int(event.exhausted)
        self.charged_total += event.charged
        self.max_rounds_used = max(self.max_rounds_used, event.max_rounds_used)
        if event.budget_remaining is not None:
            self.last_budget_remaining = event.budget_remaining
        per = self.per_mechanism.setdefault(
            event.mechanism,
            {"events": 0, "samples": 0, "draws": 0, "cache_hits": 0, "charged": 0.0},
        )
        per["events"] += 1
        per["samples"] += event.batch
        per["draws"] += event.draws
        per["cache_hits"] += event.cache_hits
        per["charged"] += event.charged
        kern = self.per_kernel.setdefault(
            event.kernel or "unreported", {"events": 0, "draws": 0}
        )
        kern["events"] += 1
        kern["draws"] += event.draws

    def _emit_ingest(self, event: IngestEvent) -> None:
        self.n_ingest_events += 1
        self.per_verdict[event.verdict] = self.per_verdict.get(event.verdict, 0) + 1
        if event.verdict == "admitted":
            self.reports_admitted += event.batch
        elif event.verdict == "repaired":
            self.reports_admitted += event.batch
            self.reports_repaired += event.batch
        elif event.verdict == "blocked":
            self.reports_blocked += event.batch
            self.per_guard_blocked[event.guard] = (
                self.per_guard_blocked.get(event.guard, 0) + 1
            )
        elif event.verdict == "busy":
            self.n_busy += 1
        elif event.verdict == "error":
            self.n_ingest_errors += 1
        self.max_queue_depth = max(self.max_queue_depth, event.queue_depth)
        if event.latency_us > 0.0:
            self._latencies_us.append(event.latency_us)

    def latency_percentile(self, q: float) -> Optional[float]:
        """Admission-latency percentile (µs) over the reservoir, or None.

        Nearest-rank over the most recent :data:`LATENCY_RESERVOIR`
        admission latencies — the tail-latency figure the ingestion
        benchmarks and the ``metrics`` endpoint report.
        """
        if not self._latencies_us:
            return None
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError("percentile must be within [0, 100]")
        ordered = sorted(self._latencies_us)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
        if q == 0.0:
            rank = 0
        return ordered[rank]

    def merge(self, other: "CounterSink") -> "CounterSink":
        """Fold another counter's aggregates into this one (in place).

        The sharded fleet runner gives every worker its own
        :class:`CounterSink` and merges them at the coordinator in shard
        order; merging is exact because every aggregate is either a sum,
        a max, or a last-write (``last_budget_remaining``, where
        ``other`` is the later shard).  Returns ``self`` so merges
        chain: ``reduce(CounterSink.merge, shard_counters, total)``.
        """
        self.n_events += other.n_events
        self.n_samples += other.n_samples
        self.n_draws += other.n_draws
        self.n_cache_hits += other.n_cache_hits
        self.n_exhausted += other.n_exhausted
        self.charged_total += other.charged_total
        self.max_rounds_used = max(self.max_rounds_used, other.max_rounds_used)
        if other.last_budget_remaining is not None:
            self.last_budget_remaining = other.last_budget_remaining
        for mech, theirs in other.per_mechanism.items():
            mine = self.per_mechanism.setdefault(
                mech,
                {"events": 0, "samples": 0, "draws": 0, "cache_hits": 0, "charged": 0.0},
            )
            for field in theirs:
                mine[field] = mine.get(field, 0) + theirs[field]
        for kern, theirs in other.per_kernel.items():
            mine = self.per_kernel.setdefault(kern, {"events": 0, "draws": 0})
            for field in theirs:
                mine[field] = mine.get(field, 0) + theirs[field]
        self.n_ingest_events += other.n_ingest_events
        self.reports_admitted += other.reports_admitted
        self.reports_repaired += other.reports_repaired
        self.reports_blocked += other.reports_blocked
        self.n_busy += other.n_busy
        self.n_ingest_errors += other.n_ingest_errors
        for verdict, n in other.per_verdict.items():
            self.per_verdict[verdict] = self.per_verdict.get(verdict, 0) + n
        for guard, n in other.per_guard_blocked.items():
            self.per_guard_blocked[guard] = self.per_guard_blocked.get(guard, 0) + n
        self.max_queue_depth = max(self.max_queue_depth, other.max_queue_depth)
        self._latencies_us.extend(other._latencies_us)
        return self

    def summary(self) -> Dict[str, object]:
        """Aggregate snapshot as a plain dict (JSON-ready)."""
        return {
            "events": self.n_events,
            "samples": self.n_samples,
            "draws": self.n_draws,
            "cache_hits": self.n_cache_hits,
            "exhausted": self.n_exhausted,
            "charged_total": self.charged_total,
            "max_rounds_used": self.max_rounds_used,
            "budget_remaining": self.last_budget_remaining,
            "per_mechanism": self.per_mechanism,
            "per_kernel": self.per_kernel,
            "ingest": self.ingest_summary(),
        }

    def ingest_summary(self) -> Dict[str, object]:
        """Admission-side snapshot (JSON-ready); the ``metrics`` payload."""
        return {
            "events": self.n_ingest_events,
            "reports_admitted": self.reports_admitted,
            "reports_repaired": self.reports_repaired,
            "reports_blocked": self.reports_blocked,
            "busy": self.n_busy,
            "internal_errors": self.n_ingest_errors,
            "per_verdict": dict(self.per_verdict),
            "per_guard_blocked": dict(self.per_guard_blocked),
            "max_queue_depth": self.max_queue_depth,
            "latency_p50_us": self.latency_percentile(50.0),
            "latency_p99_us": self.latency_percentile(99.0),
        }


def read_events_jsonl(path: Union[str, Path]) -> List[Event]:
    """Load a JSONL trace written by :class:`JsonlSink`.

    Dispatches on the ``event`` marker: lines carrying
    ``"event": "ingest"`` come back as :class:`IngestEvent`, everything
    else as :class:`ReleaseEvent` (release traces predate the marker).

    A *trailing* partial line — the signature of a writer killed
    mid-event; flush-on-write guarantees at most one — is tolerated,
    dropped, and reported via a logged warning, so a crashed worker's
    trace stays replayable.  Malformed lines anywhere *before* the tail
    still raise: mid-file corruption is a broken trace, not a crash
    artifact.
    """
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    last_index = None
    for i, line in enumerate(lines):
        if line.strip():
            last_index = i
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
        except json.JSONDecodeError:
            if i == last_index:
                _log.warning(
                    "%s: dropped truncated trailing line (%d bytes) — "
                    "the writer was likely killed mid-event",
                    path,
                    len(line),
                )
                break
            raise
        events.append(
            IngestEvent.from_dict(d)
            if d.get("event") == "ingest"
            else ReleaseEvent.from_dict(d)
        )
    return events
