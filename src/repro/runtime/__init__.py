"""Instrumented release pipeline (clip → draw → guard → charge → emit).

One execution core under every release path in the library: the six
mechanism arms, the cycle-level DP-Box, the multi-sensor shared-budget
box, and fleet devices all delegate to :class:`ReleasePipeline`, which
emits one structured :class:`ReleaseEvent` per release into pluggable
sinks.  See ``docs/runtime.md`` for the stage model, the event schema,
and the ``python -m repro trace`` CLI.
"""

from .accounting import (
    ArrayCharge,
    ChargeOutcome,
    EngineCharge,
    FlatCharge,
    NoCharge,
    ReplayCache,
    TableCharge,
)
from .events import (
    EVENT_SCHEMA_VERSION,
    INGEST_SCHEMA_VERSION,
    IngestEvent,
    ReleaseEvent,
)
from .pipeline import (
    DEFAULT_MAX_ROUNDS,
    ReleaseOutcome,
    ReleasePipeline,
    ReleaseRequest,
    default_pipeline,
    set_default_pipeline,
)
from .sinks import (
    CounterSink,
    EventSink,
    JsonlSink,
    RingBufferSink,
    read_events_jsonl,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "INGEST_SCHEMA_VERSION",
    "DEFAULT_MAX_ROUNDS",
    "ReleaseEvent",
    "IngestEvent",
    "ReleaseRequest",
    "ReleaseOutcome",
    "ReleasePipeline",
    "default_pipeline",
    "set_default_pipeline",
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "CounterSink",
    "read_events_jsonl",
    "ChargeOutcome",
    "ReplayCache",
    "NoCharge",
    "FlatCharge",
    "TableCharge",
    "EngineCharge",
    "ArrayCharge",
]
