"""The release pipeline: one execution core for every privatized release.

Every release path in the library — the six mechanism arms, the
cycle-level DP-Box, the multi-sensor box, fleet devices — reduces to the
same stage sequence:

    clip -> draw (audited RNG) -> guard -> budget charge -> cache -> emit

:class:`ReleasePipeline` owns that sequence.  A caller describes its
release declaratively as a :class:`ReleaseRequest` (clipped input codes,
a draw callable over the audited RNG, the guard kind and window, a
decode back to sensor units) plus an optional accounting policy
(:mod:`repro.runtime.accounting`), and gets back a
:class:`ReleaseOutcome` whose :class:`~repro.runtime.events.ReleaseEvent`
has already been routed to the pipeline's sinks.

The guard stage is vectorized: resampling redraws only the still-
out-of-window lanes each round (geometric round counts, the paper's
Fig. 12 timing channel), so a whole fleet epoch privatizes as one array
operation.  This module deliberately imports nothing from
``mechanisms``/``core``/``aggregation`` — those layers import *it*.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BudgetExhaustedError, ConfigurationError, ResampleExhaustedError
from .accounting import ChargeOutcome, NoCharge
from .events import ReleaseEvent
from .sinks import CounterSink, EventSink, RingBufferSink

__all__ = [
    "ReleaseRequest",
    "ReleaseOutcome",
    "ReleasePipeline",
    "default_pipeline",
    "set_default_pipeline",
]

#: Library-wide default resample round limit (the old per-mechanism
#: ``_MAX_ROUNDS``).  Exhaustion raises a typed error and emits an
#: ``exhausted=True`` event instead of silently falling through.
DEFAULT_MAX_ROUNDS = 64


@dataclasses.dataclass
class ReleaseRequest:
    """Declarative description of one (possibly batched) release."""

    mechanism: str
    """Mechanism identifier recorded on the event."""

    epsilon: float
    """Per-release privacy parameter."""

    claimed_loss: float
    """Worst-case per-sample loss bound the mechanism claims."""

    codes: np.ndarray
    """Already clipped/quantized input codes, flattened to 1-D."""

    draw: Callable[[int], np.ndarray]
    """Audited noise source: ``draw(n)`` returns ``n`` noise codes."""

    draw_add: Optional[Callable[[np.ndarray], np.ndarray]] = None
    """Fused draw: ``draw_add(codes)`` returns ``codes + draw(len(codes))``
    in fewer elementwise passes (e.g.
    :meth:`~repro.rng.laplace_fxp.FxpLaplaceRng.sample_codes_add` on the
    codebook-gather path).  MUST consume the audited source identically
    to ``draw`` and be bit-identical to ``codes + draw(n)`` — the guards
    treat it as a pure fast path and fall back to ``draw`` when unset."""

    guard: str = "none"
    """``none`` (release as drawn), ``threshold`` (clamp into window),
    or ``resample`` (redraw until in window)."""

    window: Optional[Tuple[float, float]] = None
    """Inclusive guard window ``(lo, hi)`` in output-code units."""

    max_rounds: int = DEFAULT_MAX_ROUNDS
    """Resample round limit before :class:`ResampleExhaustedError`."""

    decode: Optional[Callable[[np.ndarray], np.ndarray]] = None
    """Map released output codes to sensor units (default: identity)."""

    channel: Optional[str] = None
    """Channel / device label recorded on the event."""

    kernel: Optional[str] = None
    """Sampling kernel behind ``draw`` (``codebook``/``live``), recorded
    on the event; ``None`` when the draw path does not report one."""

    modulus: Optional[int] = None
    """Categorical alphabet size: when set, the draw combines as
    ``(codes + draw(n)) % modulus`` instead of plain addition.  This is
    how the frequency-oracle arms express their perturbation — k-ary
    randomized response is exactly additive noise on Z_g, and a per-bit
    flip is the ``modulus=2`` special case — so categorical perturbation
    runs through the same draw/guard/charge/emit stages as numeric
    noise.  Only valid with ``guard="none"`` (categorical alphabets have
    no order, hence no window to clamp or resample into)."""


@dataclasses.dataclass
class ReleaseOutcome:
    """What one pipeline pass produced."""

    values: np.ndarray
    """Released values in sensor units (post decode, post cache)."""

    codes: np.ndarray
    """Released output codes (cached codes where the budget refused)."""

    rounds: np.ndarray
    """Per-sample noise-draw counts (1 for single-draw guards)."""

    charged: np.ndarray
    """Per-sample privacy loss charged."""

    cache_hits: np.ndarray
    """Boolean mask of samples served from a cache."""

    budget_remaining: Optional[float]
    """Budget left after this release (``None`` when unaccounted)."""

    event: ReleaseEvent
    """The event emitted for this release."""


class ReleasePipeline:
    """Executes release requests and emits one event per release."""

    def __init__(self, sinks: Optional[Sequence[EventSink]] = None):
        self._sinks: List[EventSink] = list(sinks) if sinks else []
        self._seq = 0

    # -- sink management ----------------------------------------------
    @property
    def sinks(self) -> List[EventSink]:
        return list(self._sinks)

    def add_sink(self, sink: EventSink) -> EventSink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: EventSink) -> None:
        self._sinks.remove(sink)

    @contextlib.contextmanager
    def capture(self, capacity: int = 4096) -> Iterator[RingBufferSink]:
        """Temporarily attach a ring buffer; yields it for inspection."""
        ring = RingBufferSink(capacity)
        self.add_sink(ring)
        try:
            yield ring
        finally:
            self.remove_sink(ring)

    def emit(self, event: ReleaseEvent) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def adopt(self, events: Sequence[ReleaseEvent]) -> List[ReleaseEvent]:
        """Re-emit events produced by *another* pipeline, renumbered.

        The sharded fleet runner collects each worker's events and
        reassembles them here in shard order: every adopted event gets
        this pipeline's next sequence number (its shard-local ``seq``
        is discarded) and is routed to this pipeline's sinks, so a
        sharded run leaves one coherent, monotone trace exactly like an
        in-process run.  Returns the renumbered events in order.
        """
        adopted = [
            dataclasses.replace(event, seq=self._next_seq()) for event in events
        ]
        for event in adopted:
            self.emit(event)
        return adopted

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- the stages ----------------------------------------------------
    def release(self, request: ReleaseRequest, accounting=None) -> ReleaseOutcome:
        """Run draw -> guard -> charge -> emit for one request.

        ``accounting`` is any object with ``charge(codes) ->
        ChargeOutcome`` (see :mod:`repro.runtime.accounting`); ``None``
        means an unaccounted release.  On guard exhaustion or a refused
        charge with no cache, an ``exhausted=True`` event is emitted
        *before* the typed exception propagates, so failed releases are
        still visible in the trace.
        """
        codes = np.asarray(request.codes).reshape(-1)
        n = codes.shape[0]
        rounds = np.ones(n, dtype=np.int64) if n else np.zeros(0, dtype=np.int64)
        if request.modulus is not None:
            if request.guard != "none":
                raise ConfigurationError(
                    "modulus (categorical alphabet) releases take no guard: "
                    f"got guard={request.guard!r}"
                )
            if request.modulus < 2:
                raise ConfigurationError("modulus must be >= 2")

        # draw + guard
        if n == 0:
            k_y = codes.copy()
        elif request.guard == "none":
            k_y = self._noised(request, codes)
            if request.modulus is not None:
                np.mod(k_y, request.modulus, out=k_y)
        elif request.guard == "threshold":
            # Fully fused threshold pass on the codebook-gather path:
            # draw_add folds sign + add into the gather buffer and the
            # clamp clips that same buffer in place — one output array
            # end to end, no elementwise round-trips (ROADMAP fast-path
            # note).
            k_y = self._noised(request, codes)
            k_y = self._clamp(k_y, *self._window(request))
        elif request.guard == "resample":
            k_y = self._resample(request, codes, rounds)
        else:
            raise ConfigurationError(f"unknown guard kind {request.guard!r}")

        # charge + cache
        policy = accounting if accounting is not None else NoCharge()
        try:
            charge = policy.charge(k_y)
        except BudgetExhaustedError:
            self._emit_for(request, n, rounds, exhausted=True)
            raise

        # decode + emit
        values = charge.codes if request.decode is None else request.decode(charge.codes)
        event = self._emit_for(request, n, rounds, charge=charge)
        return ReleaseOutcome(
            values=np.asarray(values),
            codes=charge.codes,
            rounds=rounds,
            charged=charge.charged,
            cache_hits=charge.cache_hits,
            budget_remaining=charge.budget_remaining,
            event=event,
        )

    def charge_and_emit(
        self,
        *,
        mechanism: str,
        epsilon: float,
        claimed_loss: float,
        guard: str,
        k_fresh: int,
        accounting,
        draws: int,
        cycles: Optional[int] = None,
        channel: Optional[str] = None,
        kernel: Optional[str] = None,
    ) -> ChargeOutcome:
        """Charge+emit for a release whose draw/guard ran externally.

        The cycle-level DP-Box FSM executes its own draw and guard (it
        models them cycle by cycle) but still routes Start Noising's
        budget charge and event emission through the pipeline, so
        hardware noisings land in the same trace as mechanism releases —
        with their cycle latency attached.
        """
        codes = np.asarray([k_fresh], dtype=np.int64)
        try:
            charge = accounting.charge(codes)
        except BudgetExhaustedError:
            self.emit(
                ReleaseEvent(
                    seq=self._next_seq(),
                    mechanism=mechanism,
                    epsilon=epsilon,
                    claimed_loss=claimed_loss,
                    guard=guard,
                    batch=1,
                    draws=int(draws),
                    resample_rounds=int(draws) - 1,
                    max_rounds_used=int(draws),
                    exhausted=True,
                    channel=channel,
                    cycles=cycles,
                    kernel=kernel,
                )
            )
            raise
        self.emit(
            ReleaseEvent(
                seq=self._next_seq(),
                mechanism=mechanism,
                epsilon=epsilon,
                claimed_loss=claimed_loss,
                guard=guard,
                batch=1,
                draws=int(draws),
                resample_rounds=int(draws) - 1,
                max_rounds_used=int(draws),
                charged=float(charge.charged.sum()),
                cache_hits=int(charge.cache_hits.sum()),
                budget_remaining=charge.budget_remaining,
                channel=channel,
                cycles=cycles,
                kernel=kernel,
            )
        )
        return charge

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _noised(request: ReleaseRequest, codes: np.ndarray) -> np.ndarray:
        """``codes + noise`` through the fused draw when one is wired.

        ``draw_add`` is contractually bit-identical to ``codes + draw(n)``
        with identical source consumption, so the guards can treat the
        two interchangeably.
        """
        if request.draw_add is not None:
            return request.draw_add(codes)
        return codes + request.draw(codes.shape[0])

    @staticmethod
    def _window(request: ReleaseRequest) -> Tuple[float, float]:
        if request.window is None:
            raise ConfigurationError(
                f"guard {request.guard!r} requires a window"
            )
        return request.window

    @staticmethod
    def _clamp(k_y: np.ndarray, lo, hi) -> np.ndarray:
        """Clamp ``k_y`` into ``[lo, hi]`` in place where dtypes allow.

        Integer codes with an integral window (every fixed-point arm)
        clip without a temporary; a fractional window over integer codes
        falls back to the upcasting out-of-place clip, preserving the
        pre-fusion semantics.
        """
        if k_y.dtype.kind in "iu":
            ilo, ihi = int(lo), int(hi)
            if ilo != lo or ihi != hi:
                return np.clip(k_y, lo, hi)
            lo, hi = ilo, ihi
        np.clip(k_y, lo, hi, out=k_y)
        return k_y

    @staticmethod
    def _out_of_window(k: np.ndarray, lo, hi, span) -> np.ndarray:
        """Membership test ``(k < lo) | (k > hi)`` as one fused pass.

        For integer codes the two comparisons and the ``|`` fuse into a
        single unsigned range check: ``uint(k - lo) > hi - lo`` is true
        exactly when ``k`` is outside ``[lo, hi]`` (a negative ``k - lo``
        wraps to a huge unsigned value).  The reinterpretation is a free
        ``view`` when the difference is already int64 — two's-complement
        bit patterns *are* the wrapped unsigned values — and only narrower
        dtypes pay an ``astype`` widening.  Float codes keep the two-pass
        comparison; the wrap trick has no float analogue.
        """
        if k.dtype.kind in "iu" and span is not None:
            diff = k - lo
            if diff.dtype.itemsize == 8:
                return diff.view(np.uint64) > span
            return diff.astype(np.uint64) > span
        return (k < lo) | (k > hi)

    def _resample(
        self, request: ReleaseRequest, codes: np.ndarray, rounds: np.ndarray
    ) -> np.ndarray:
        """Vectorized redraw-until-in-window; mutates ``rounds`` in place."""
        lo, hi = self._window(request)
        # The fused unsigned range check needs an exact integer span;
        # fractional windows disable it (span=None -> two-pass compare).
        span = None
        if int(lo) == lo and int(hi) == hi:
            span = np.uint64(int(hi) - int(lo))
            lo = int(lo)
            hi = int(hi)
        n = codes.shape[0]
        k_y = self._noised(request, codes)
        # dplint note: the redraw loop below is the paper's Fig. 12
        # timing channel, reproduced deliberately; its round counts are
        # surfaced on every ReleaseEvent so attacks/timing.py can measure
        # it from the trace instead of re-instrumenting mechanisms.
        pending = np.flatnonzero(self._out_of_window(k_y, lo, hi, span))
        for _ in range(request.max_rounds - 1):
            if pending.size == 0:
                break
            # Per-round fused redraw: draw_add writes sign+add into the
            # gather buffer, and the accept mask is the one-pass unsigned
            # range check — no ±1 vector, no two-pass compare.
            redrawn = self._noised(request, codes[pending])
            k_y[pending] = redrawn
            rounds[pending] += 1
            pending = pending[self._out_of_window(redrawn, lo, hi, span)]
        if pending.size:
            self._emit_for(request, n, rounds, exhausted=True)
            raise ResampleExhaustedError(
                f"{request.mechanism}: {pending.size} of {n} samples still "
                f"out of window after {request.max_rounds} draws; the guard "
                f"window is almost certainly mis-calibrated"
            )
        return k_y

    def _emit_for(
        self,
        request: ReleaseRequest,
        n: int,
        rounds: np.ndarray,
        charge: Optional[ChargeOutcome] = None,
        exhausted: bool = False,
    ) -> ReleaseEvent:
        draws = int(rounds.sum())
        event = ReleaseEvent(
            seq=self._next_seq(),
            mechanism=request.mechanism,
            epsilon=request.epsilon,
            claimed_loss=request.claimed_loss,
            guard=request.guard,
            batch=n,
            draws=draws,
            resample_rounds=draws - n,
            max_rounds_used=int(rounds.max()) if n else 0,
            exhausted=exhausted,
            charged=float(charge.charged.sum()) if charge is not None else 0.0,
            cache_hits=int(charge.cache_hits.sum()) if charge is not None else 0,
            budget_remaining=(
                charge.budget_remaining if charge is not None else None
            ),
            channel=request.channel,
            kernel=request.kernel,
        )
        self.emit(event)
        return event


# ---------------------------------------------------------------------
# Process-wide default pipeline.  Mechanisms constructed without an
# explicit pipeline share this one, so "just privatize something" is
# still observable (counters + a small ring) without any setup.
_default: Optional[ReleasePipeline] = None


def default_pipeline() -> ReleasePipeline:
    """The shared process-wide pipeline (created on first use)."""
    global _default
    if _default is None:
        _default = ReleasePipeline(sinks=[CounterSink()])
    return _default


def set_default_pipeline(pipeline: ReleasePipeline) -> ReleasePipeline:
    """Replace the process-wide default; returns the previous one."""
    global _default
    previous = default_pipeline()
    _default = pipeline
    return previous
