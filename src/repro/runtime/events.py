"""Structured release events — the pipeline's observable output.

Every release that goes through :class:`repro.runtime.ReleasePipeline`
emits exactly one :class:`ReleaseEvent`.  The event is the single source
of truth for what the release *cost*: how many noise draws the guard
consumed (the paper's Fig. 12 timing channel), which segment Algorithm 1
charged, how much budget remains, and whether the reply was served from
the post-exhaustion cache.  Consumers (the timing attack, the latency
benchmarks, the ``repro trace`` CLI) read events instead of
re-instrumenting mechanisms by hand — one trace, many consumers.

Events are flat and JSON-serializable so a JSONL trace can be replayed
offline; ``tests/unit/test_runtime_trace.py`` reconstructs the exact
budget trajectory from a written trace.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ReleaseEvent",
    "IngestEvent",
    "EVENT_SCHEMA_VERSION",
    "INGEST_SCHEMA_VERSION",
]

#: Bumped whenever a field is added/renamed so replay tools can detect
#: traces written by an incompatible library version.
#: v2: added ``kernel`` (codebook/live sampling kernel used for draws).
EVENT_SCHEMA_VERSION = 2

#: Schema version of :class:`IngestEvent` (independent of the release
#: event schema — the two streams evolve separately).
INGEST_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ReleaseEvent:
    """One privatized release (scalar or batched) as seen by the pipeline.

    A *batched* release (e.g. one fleet epoch) is still one event; the
    per-sample quantities are aggregated (``draws`` is the total across
    the batch, ``max_rounds_used`` the worst single sample).
    """

    seq: int
    """Monotone sequence number within the emitting pipeline."""

    mechanism: str
    """Mechanism identifier (class name, or ``"dpbox"`` for the FSM)."""

    epsilon: float
    """Per-release privacy parameter the mechanism was built with."""

    claimed_loss: float
    """Worst-case per-sample loss bound the mechanism claims."""

    guard: str
    """Guard applied: ``none`` / ``threshold`` / ``resample`` / ``hardware``."""

    batch: int
    """Number of samples released in this event."""

    draws: int
    """Total noise draws consumed, including resampling redraws."""

    resample_rounds: int
    """Redraws beyond the first draw per sample (``draws - batch``)."""

    max_rounds_used: int
    """Largest per-sample draw count in the batch (timing worst case)."""

    exhausted: bool = False
    """True when the resample guard hit its round limit (release aborted)
    or a budget charge was refused with no cache to serve from."""

    charged: float = 0.0
    """Total privacy loss charged against the budget for this event."""

    cache_hits: int = 0
    """Samples served from the post-exhaustion cache (charged nothing)."""

    budget_remaining: Optional[float] = None
    """Budget left *after* this event, or ``None`` if unaccounted."""

    channel: Optional[str] = None
    """Multi-sensor channel name, fleet device id, or ``None``."""

    cycles: Optional[int] = None
    """DP-Box cycle latency of the noising (hardware releases only)."""

    kernel: Optional[str] = None
    """Sampling kernel that produced the draws: ``codebook`` (precomputed
    code→noise table gather, see :mod:`repro.rng.codebook`) or ``live``
    (per-draw logarithm datapath); ``None`` when the draw path does not
    report one (e.g. the ideal float arms)."""

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready dict (adds the schema version)."""
        d = dataclasses.asdict(self)
        d["schema"] = EVENT_SCHEMA_VERSION
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ReleaseEvent":
        """Rebuild an event from :meth:`to_dict` output (tolerates extras)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in names})


@dataclasses.dataclass(frozen=True)
class IngestEvent:
    """One admission decision at the ingestion boundary.

    Where a :class:`ReleaseEvent` records what a device *released*, an
    ``IngestEvent`` records what the ingestion service *decided* about a
    report batch arriving from the network: which guard ruled, with what
    verdict, how deep the aggregation queue was, and how long admission
    took.  Every request gets exactly one event — admitted, repaired,
    blocked, busy, or malformed — so the trace machinery that audits
    releases audits admissions the same way (no silent drops, ever).
    """

    seq: int
    """Monotone sequence number within the emitting service."""

    verdict: str
    """``admitted`` / ``repaired`` / ``blocked`` / ``busy`` / ``error``."""

    guard: str
    """Deciding guard name; ``chain`` when every guard allowed, ``wire``
    for failures before the chain ran (unparseable or truncated lines),
    ``queue`` for backpressure BUSY, ``internal`` for service faults."""

    reason: str
    """Structured human-readable why (empty for plain admissions)."""

    op: str
    """Request operation: ``submit`` / ``submit_counts`` / ``snapshot`` /
    ``metrics`` / ``ping`` / ``unknown``."""

    batch: int
    """Reports carried by the request (0 for non-submission ops)."""

    epoch: Optional[int] = None
    """Epoch the batch targets, when the request got far enough to say."""

    queue_depth: int = 0
    """Aggregation-queue depth right after the decision (backpressure
    signal; the BUSY threshold is the queue capacity)."""

    latency_us: float = 0.0
    """Admission latency: line received → response ready, microseconds."""

    repaired_fields: int = 0
    """Number of recorded repair deltas applied to the batch."""

    delta: Tuple[str, ...] = ()
    """The repair deltas themselves (``field: old -> new`` strings) — the
    auditable record that a REPAIR changed exactly this and nothing else."""

    channel: Optional[str] = None
    """Peer label (``host:port`` of the submitting connection)."""

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready dict (adds schema version + event marker)."""
        d = dataclasses.asdict(self)
        d["delta"] = list(self.delta)
        d["schema"] = INGEST_SCHEMA_VERSION
        d["event"] = "ingest"
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "IngestEvent":
        """Rebuild an event from :meth:`to_dict` output (tolerates extras)."""
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in d.items() if k in names}
        if "delta" in kwargs:
            kwargs["delta"] = tuple(kwargs["delta"])
        return cls(**kwargs)
