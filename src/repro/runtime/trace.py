"""Backend of ``python -m repro trace`` — selfcheck and trace replay.

``--selfcheck`` exercises every release path through one instrumented
pipeline (mechanism batches, the shared-budget multi-sensor box, the
cycle-level DP-Box, the batched-vs-scalar fleet) and validates the
emitted events against the invariants they are supposed to carry.  It is
the CI smoke test for the runtime layer.

``--replay`` loads a JSONL trace written by
:class:`~repro.runtime.sinks.JsonlSink`, validates per-event arithmetic
and the budget trajectory, and prints aggregate counters.

Imports of the instrumented layers are local to the functions: this
module lives *under* them in the import graph.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .events import IngestEvent, ReleaseEvent
from .pipeline import ReleasePipeline
from .sinks import CounterSink, JsonlSink, RingBufferSink, read_events_jsonl

__all__ = ["run_selfcheck", "run_replay"]

_TOL = 1e-9


class _CheckFailure(Exception):
    """A selfcheck invariant did not hold."""


def _check(cond: bool, what: str) -> None:
    if not cond:
        raise _CheckFailure(what)


def _event_arithmetic_ok(e: ReleaseEvent) -> bool:
    return (
        e.draws >= e.batch >= 0
        and e.resample_rounds == e.draws - e.batch
        and e.max_rounds_used <= e.draws
        and e.charged >= -_TOL
        and e.cache_hits >= 0
    )


# ---------------------------------------------------------------------
# selfcheck stages
# ---------------------------------------------------------------------
def _check_mechanisms(pipeline: ReleasePipeline, ring: RingBufferSink) -> None:
    from ..mechanisms import SensorSpec, make_mechanism
    from ..rng.urng import SplitStreamSource

    sensor = SensorSpec(0.0, 8.0)
    kwargs = dict(input_bits=12, output_bits=16, delta=8 / 64, pipeline=pipeline)
    for arm in ("baseline", "thresholding", "resampling"):
        mech = make_mechanism(
            arm, sensor, 0.5, source=SplitStreamSource(11), **kwargs
        )
        before = len(ring)
        # dplint: allow[DPL004] -- selfcheck workload on an isolated
        # pipeline; deliberately unaccounted to exercise the NoCharge path.
        values = mech.privatize(np.linspace(0.0, 8.0, 64))
        _check(values.shape == (64,), f"{arm}: bad output shape")
        _check(len(ring) == before + 1, f"{arm}: expected exactly one event")
        e = ring.events[-1]
        _check(_event_arithmetic_ok(e), f"{arm}: inconsistent event arithmetic")
        _check(e.batch == 64, f"{arm}: wrong batch size on event")
        if arm != "resampling":
            _check(e.draws == 64, f"{arm}: single-draw guard must draw once")


def _check_multisensor(ring: RingBufferSink, pipeline: ReleasePipeline) -> None:
    from ..core.config import GuardMode
    from ..core.multisensor import ChannelConfig, MultiSensorDPBox

    sensor_args = dict(input_bits=12, segment_levels=(1.0, 1.5, 2.0))
    from ..mechanisms import SensorSpec

    box = MultiSensorDPBox(
        [
            ChannelConfig(name="temp", sensor=SensorSpec(0, 8), epsilon=0.5,
                          guard_mode=GuardMode.THRESHOLD, **sensor_args),
            ChannelConfig(name="accel", sensor=SensorSpec(0, 4), epsilon=0.5,
                          guard_mode=GuardMode.THRESHOLD, **sensor_args),
        ],
        budget=2.0,
        pipeline=pipeline,
    )
    start = len(ring)
    for i in range(12):
        box.request("temp" if i % 2 == 0 else "accel", 2.0)
    events = ring.events[start:]
    _check(len(events) == 12, "multisensor: expected one event per request")
    _check(
        all(e.budget_remaining is not None for e in events),
        "multisensor: events must carry the shared budget remaining",
    )
    # The event stream must reproduce the exact budget trajectory.
    prev = 2.0
    for e in events:
        _check(
            abs(prev - e.charged - e.budget_remaining) < _TOL,
            "multisensor: budget trajectory mismatch in event stream",
        )
        prev = e.budget_remaining
    _check(box.n_cached > 0, "multisensor: budget never exhausted into cache")
    _check(
        any(e.cache_hits for e in events),
        "multisensor: cache replays must be visible on events",
    )


def _check_dpbox(ring: RingBufferSink, pipeline: ReleasePipeline) -> None:
    from ..core import DPBox, DPBoxConfig, DPBoxDriver, GuardMode, LatencyStats

    box = DPBox(
        DPBoxConfig(input_bits=10, range_frac_bits=5,
                    guard_mode=GuardMode.THRESHOLD),
        pipeline=pipeline,
    )
    driver = DPBoxDriver(box)
    driver.initialize(budget=100.0)
    driver.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
    start = len(ring)
    for x in (0.0, 2.0, 4.0, 6.0, 8.0):
        driver.noise(x)
    events = ring.events[start:]
    _check(len(events) == 5, "dpbox: expected one event per noising")
    _check(
        all(e.cycles is not None for e in events),
        "dpbox: hardware events must carry cycle latency",
    )
    stats = LatencyStats.from_events(events)
    _check(
        stats.mean_cycles == 2.0,
        "dpbox: thresholding latency must be the 2-cycle base",
    )


def _check_fleet(pipeline: ReleasePipeline) -> None:
    from ..aggregation.fleet import run_fleet
    from ..mechanisms import SensorSpec

    sensor = SensorSpec(0.0, 8.0)
    truth = np.linspace(0.5, 7.5, 40).reshape(2, 20)
    kwargs = dict(
        epsilon=0.5, device_budget=2.5, source_seed=7, input_bits=12,
        output_bits=16, delta=8 / 64, pipeline=pipeline,
    )
    # dplint: allow[DPL001] -- dropout simulation randomness only; the
    # release noise comes from the SplitStreamSource seeded above.
    a = run_fleet(truth, sensor, rng=np.random.default_rng(3), batched=True, **kwargs)
    # dplint: allow[DPL001] -- same: simulation randomness, not release noise.
    b = run_fleet(truth, sensor, rng=np.random.default_rng(3), batched=False, **kwargs)
    for epoch in a.server.epochs:
        _check(
            np.array_equal(a.server.values(epoch), b.server.values(epoch)),
            "fleet: batched and scalar paths must be bit-identical",
        )


def run_selfcheck(jsonl_path: Optional[str] = None) -> int:
    """Exercise every release path; returns a process exit code."""
    pipeline = ReleasePipeline()
    counters = pipeline.add_sink(CounterSink())
    ring = pipeline.add_sink(RingBufferSink(capacity=65536))
    jsonl = None
    if jsonl_path is not None:
        jsonl = pipeline.add_sink(JsonlSink(jsonl_path))
    stages = (
        ("mechanism arms", lambda: _check_mechanisms(pipeline, ring)),
        ("multisensor shared budget", lambda: _check_multisensor(ring, pipeline)),
        ("dpbox cycle model", lambda: _check_dpbox(ring, pipeline)),
        ("fleet batched == scalar", lambda: _check_fleet(pipeline)),
    )
    failures: List[str] = []
    for label, stage in stages:
        try:
            stage()
            print(f"selfcheck: {label:<28} ok")
        except _CheckFailure as exc:
            failures.append(f"{label}: {exc}")
            print(f"selfcheck: {label:<28} FAIL ({exc})")
    if jsonl is not None:
        jsonl.close()
        back = read_events_jsonl(jsonl_path)
        if len(back) != counters.n_events:
            failures.append("jsonl round trip lost events")
        print(f"selfcheck: trace written              {jsonl_path} "
              f"({len(back)} events)")
    s = counters.summary()
    print(
        f"selfcheck: {s['events']} events, {s['samples']} samples, "
        f"{s['draws']} draws, {s['cache_hits']} cache hits, "
        f"charged {s['charged_total']:.4g}"
    )
    if failures:
        print(f"selfcheck: {len(failures)} failure(s)")
        return 1
    print("selfcheck: all release paths OK")
    return 0


# ---------------------------------------------------------------------
def run_replay(path: str, limit: Optional[int] = None) -> int:
    """Validate and summarize a JSONL trace; returns an exit code."""
    events = read_events_jsonl(path)
    if limit is not None:
        events = events[:limit]
    if not events:
        print(f"replay: {path}: no events")
        return 1
    counters = CounterSink()
    bad = 0
    prev_remaining = None
    accounted = 0
    segments = 0
    for e in events:
        if isinstance(e, IngestEvent):
            # Admission decisions interleave with releases in a service
            # trace; they carry no draw/charge arithmetic to validate —
            # the counters fold them into the ingest summary instead.
            counters.emit(e)
            continue
        if not _event_arithmetic_ok(e):
            bad += 1
        counters.emit(e)
        if e.budget_remaining is not None:
            accounted += 1
            # Reconstruct the budget trajectory: remaining must fall by
            # exactly the charged loss.  A value that does not continue
            # the previous one starts a new stream (another accountant,
            # or a replenishment), not an inconsistency.
            if (
                prev_remaining is None
                or abs(prev_remaining - e.charged - e.budget_remaining) > 1e-6
            ):
                segments += 1
            prev_remaining = e.budget_remaining
    s = counters.summary()
    print(f"replay: {path}")
    print(f"  events          : {s['events']} ({bad} with inconsistent arithmetic)")
    print(f"  samples         : {s['samples']}")
    print(f"  draws           : {s['draws']} "
          f"(max per-sample rounds {s['max_rounds_used']})")
    print(f"  cache hits      : {s['cache_hits']}")
    print(f"  exhausted       : {s['exhausted']}")
    print(f"  charged total   : {s['charged_total']:.6g}")
    if s["budget_remaining"] is not None:
        print(
            f"  budget remaining: {s['budget_remaining']:.6g} "
            f"({accounted} accounted events in {segments} budget stream(s))"
        )
    for name, per in sorted(s["per_mechanism"].items()):
        print(
            f"  {name:<16}: {per['events']} events, {per['samples']} samples, "
            f"{per['draws']} draws, charged {per['charged']:.6g}"
        )
    ing = s["ingest"]
    if ing["events"]:
        print(
            f"  ingest          : {ing['events']} decisions — "
            f"admitted {ing['reports_admitted']} reports "
            f"({ing['reports_repaired']} repaired), "
            f"blocked {ing['reports_blocked']}, busy {ing['busy']}, "
            f"internal errors {ing['internal_errors']}"
        )
    return 0 if bad == 0 else 1
