"""Logistic regression via full-batch gradient descent.

Mentioned alongside SVM in the paper's learning discussion ("models such
as logistic regression or support vector machine can be trained while
preserving data privacy").  A compact from-scratch implementation used by
the private-learning example and as a second model in the Table-VI-style
sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Numerically stable logistic function.
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@dataclasses.dataclass
class LogisticRegression:
    """L2-regularized logistic regression, ±1 labels."""

    regularization: float = 1e-3
    learning_rate: float = 0.5
    iterations: int = 300

    def __post_init__(self) -> None:
        if self.regularization < 0:
            raise ConfigurationError("regularization must be nonnegative")
        if self.learning_rate <= 0 or self.iterations < 1:
            raise ConfigurationError("invalid optimizer settings")
        self.weight: Optional[np.ndarray] = None
        self.bias: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Train on features ``X`` (n, dim) and ±1 labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.size:
            raise ConfigurationError("X must be (n, dim) matching y")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ConfigurationError("labels must be ±1")
        y01 = (y + 1.0) / 2.0
        n, dim = X.shape
        w = np.zeros(dim)
        b = 0.0
        for _ in range(self.iterations):
            p = _sigmoid(X @ w + b)
            grad_w = X.T @ (p - y01) / n + self.regularization * w
            grad_b = float(np.mean(p - y01))
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weight = w
        self.bias = b
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """±1 class predictions."""
        if self.weight is None:
            raise ConfigurationError("model is not fitted")
        z = np.asarray(X, dtype=float) @ self.weight + self.bias
        return np.where(z >= 0, 1, -1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))
