"""From-scratch ML substrate for the private-learning experiment
(Table VI): linear SVM, logistic regression, and the training harness."""

from .logistic import LogisticRegression
from .metrics import (
    PrivateTrainingResult,
    accuracy,
    table6_sweep,
    train_private_svm,
)
from .svm import LinearSVM

__all__ = [
    "LogisticRegression",
    "PrivateTrainingResult",
    "accuracy",
    "table6_sweep",
    "train_private_svm",
    "LinearSVM",
]
