"""Classification metrics and the private-training harness (Table VI)."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..datasets.halfspace import HalfspaceDataset
from ..errors import ConfigurationError
from ..mechanisms import LocalMechanism, SensorSpec, make_mechanism
from .svm import LinearSVM

__all__ = ["accuracy", "PrivateTrainingResult", "train_private_svm", "table6_sweep"]


def accuracy(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of matching labels."""
    predicted = np.asarray(predicted).ravel()
    truth = np.asarray(truth).ravel()
    if predicted.size != truth.size or predicted.size == 0:
        raise ConfigurationError("prediction/truth size mismatch")
    return float(np.mean(predicted == truth))


@dataclasses.dataclass(frozen=True)
class PrivateTrainingResult:
    """One Table-VI cell: accuracy of an SVM trained on noised features."""

    train_size: int
    epsilon: Optional[float]  # None = no privacy
    test_accuracy: float


def _noise_features(
    features: np.ndarray, mechanism: LocalMechanism
) -> np.ndarray:
    """Privatize each feature coordinate independently (LDP per value)."""
    flat = features.reshape(-1)
    return mechanism.privatize(flat).reshape(features.shape)


def train_private_svm(
    data: HalfspaceDataset,
    n_train: int,
    epsilon: Optional[float],
    arm: str = "thresholding",
    svm: Optional[LinearSVM] = None,
    seed: int = 0,
) -> PrivateTrainingResult:
    """Train on (optionally) privatized features, test on clean data.

    The paper noises the training data and evaluates all models on the
    same clean test set; labels are kept (only sensor features are
    private).
    """
    train, test = data.split(n_train)
    feats = train.features
    if epsilon is not None:
        mech = make_mechanism(arm, SensorSpec(-1.0, 1.0), epsilon)
        feats = _noise_features(np.clip(feats, -1.0, 1.0), mech)
    model = svm or LinearSVM(seed=seed)
    model.fit(feats, train.labels)
    return PrivateTrainingResult(
        train_size=n_train,
        epsilon=epsilon,
        test_accuracy=model.score(test.features, test.labels),
    )


def table6_sweep(
    data: HalfspaceDataset,
    train_sizes: Sequence[int],
    epsilons: Sequence[Optional[float]],
    arm: str = "thresholding",
) -> Dict[Optional[float], Dict[int, float]]:
    """The full Table-VI grid: accuracy[epsilon][train_size]."""
    grid: Dict[Optional[float], Dict[int, float]] = {}
    for eps in epsilons:
        grid[eps] = {}
        for n in train_sizes:
            result = train_private_svm(data, n, eps, arm=arm)
            grid[eps][n] = result.test_accuracy
    return grid
