"""Linear SVM trained with the Pegasos subgradient method.

The paper's privacy-preserving-learning experiment (Table VI) trains an
SVM on noised data and tests on clean data.  scikit-learn is not
available offline, so this is a from-scratch primal solver: Pegasos
(Shalev-Shwartz et al.) — stochastic subgradient descent on the
hinge-loss objective ``λ/2·||w||² + mean(hinge)`` with the ``1/(λt)``
step schedule, plus an unregularized bias term.

Deterministic given the seed; converges to the max-margin separator fast
enough for the few-thousand-point Table-VI sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["LinearSVM"]


@dataclasses.dataclass
class LinearSVM:
    """Primal linear SVM (hinge loss, L2 regularization).

    ``average=True`` (the default) returns the average of the SGD
    iterates over the second half of training rather than the last
    iterate — the standard Pegasos stabilization, essential when the
    training features carry heavy LDP noise.
    """

    regularization: float = 1e-3
    epochs: int = 30
    seed: Optional[int] = 0
    average: bool = True

    def __post_init__(self) -> None:
        if self.regularization <= 0:
            raise ConfigurationError("regularization must be positive")
        if self.epochs < 1:
            raise ConfigurationError("need at least one epoch")
        self.weight: Optional[np.ndarray] = None
        self.bias: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Train on features ``X`` (n, dim) and ±1 labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.size:
            raise ConfigurationError("X must be (n, dim) matching y")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ConfigurationError("labels must be ±1")
        n, dim = X.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(dim)
        b = 0.0
        lam = self.regularization
        t = 0
        total_steps = self.epochs * n
        tail_start = total_steps // 2
        w_sum = np.zeros(dim)
        b_sum = 0.0
        n_avg = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for i in order:
                t += 1
                eta = 1.0 / (lam * t)
                margin = y[i] * (X[i] @ w + b)
                w *= 1.0 - eta * lam
                if margin < 1.0:
                    w += eta * y[i] * X[i]
                    b += eta * y[i]
                if self.average and t > tail_start:
                    w_sum += w
                    b_sum += b
                    n_avg += 1
        if self.average and n_avg:
            self.weight = w_sum / n_avg
            self.bias = b_sum / n_avg
        else:
            self.weight = w
            self.bias = b
        return self

    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance scores ``X·w + b``."""
        if self.weight is None:
            raise ConfigurationError("model is not fitted")
        return np.asarray(X, dtype=float) @ self.weight + self.bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        """±1 class predictions."""
        return np.where(self.decision_function(X) >= 0, 1, -1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))
