"""Composable pre-admission guard chain (ALLOW / WARN / BLOCK / REPAIR).

Every submission request runs through a :class:`GuardChain` before any
of it reaches the aggregation server.  Each guard inspects the request
and returns a :class:`GuardDecision`:

* **ALLOW** — proceed unchanged.
* **WARN** — proceed, but record a structured warning on the outcome.
* **BLOCK** — refuse the whole batch; the decision carries the reason.
* **REPAIR** — proceed with a *modified* request; every change is
  recorded as a ``field: old -> new`` delta string.

The chain's contract — property-tested in
``tests/property/test_service_guard_properties.py`` — is a strict trichotomy: any
request is either *fully admitted*, *repaired with a recorded delta*,
or *blocked with a reason*.  Nothing is ever silently dropped: a repair
that removes reports names every removal in the delta, and a batch
whose reports would all be removed is blocked instead.

Guards are deterministic state machines over the request sequence (no
wall clock, no randomness), so an admission trace is replayable: the
same requests in the same order produce the same verdicts on any host.

State is applied in **two phases**: :meth:`Guard.check` must be free of
side effects — it rules on the request against the guard's *committed*
state and may attach a ``commit`` callback to its decision.  The chain
collects those callbacks onto the :class:`ChainOutcome`, and the server
invokes :meth:`ChainOutcome.commit` only once the batch is actually
enqueued.  Two consequences, both load-bearing:

* a batch refused at the queue (``busy`` backpressure) or at shutdown
  leaves guard state untouched, so the documented retry of the *same*
  batch is admissible — admission state never charges for work the
  aggregation side never accepted;
* commit callbacks receive the **final** (post-repair) request, so a
  budget charge covers exactly the reports that survived later repairs,
  not the ones a downstream guard dropped.

**Columnar fast path.**  Requests arriving on the binary wire carry
numpy column buffers (``device_ids`` as a fixed-width ``S`` array,
``values`` as ``float64``) instead of Python lists.
:meth:`GuardChain.check_array` routes each guard through
:meth:`Guard.check_array`; the rulings are **verdict-, delta-, and
commit-equivalent** to the scalar path on the same logical batch
(property-tested in
``tests/property/test_columnar_guard_equivalence.py``).  The numeric
column never becomes per-report Python objects: the schema guard rules
on it with single ``np.isfinite``/shape sweeps and repairs mask it
in-place-shaped (``values[keep_mask]``).  Device ids are different —
every stateful guard keys its bookkeeping on Python strings (state is
shared with the scalar path: a device's rate count or budget spend is
one number no matter which wire its reports took), so the schema guard
decodes the id column **exactly once** into the canonical request and
the downstream guards and the fold reuse that decode; measured against
``np.unique``-based per-device counting, the shared str-keyed dict
walk is both faster and exactly order-equivalent to the scalar walk.
The base-class default delegates to :meth:`Guard.check`, so custom
guards that only read scalar fields (``op``/``epoch``/
``claimed_loss``) work on both wires unchanged.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Verdict",
    "GuardDecision",
    "ChainOutcome",
    "Guard",
    "GuardChain",
    "SchemaGuard",
    "EpochBudgetGuard",
    "RateLimitGuard",
    "default_chain",
]


class Verdict(enum.Enum):
    """One guard's ruling on one request."""

    ALLOW = "allow"
    WARN = "warn"
    BLOCK = "block"
    REPAIR = "repair"


@dataclasses.dataclass(frozen=True)
class GuardDecision:
    """One guard's decision, with its auditable why.

    ``request`` is the (possibly repaired) request to hand the next
    guard; ``None`` means "unchanged".  ``delta`` records every repair
    as a human-readable ``field: old -> new`` string.  ``commit``, when
    set, applies the guard's state change for this request; it is
    called with the chain's *final* admitted request, and only once the
    batch has actually been accepted downstream (see module docstring).
    """

    verdict: Verdict
    guard: str
    reason: str = ""
    request: Optional[Dict[str, Any]] = None
    delta: Tuple[str, ...] = ()
    commit: Optional[Callable[[Dict[str, Any]], None]] = None


@dataclasses.dataclass(frozen=True)
class ChainOutcome:
    """The chain's aggregate ruling over all guards.

    ``verdict`` is the trichotomy: ``admitted`` / ``repaired`` /
    ``blocked``.  ``request`` is the final request (repairs applied) for
    admitted/repaired outcomes.  ``guard`` names the blocking guard, or
    ``"chain"`` when every guard let the request through.
    """

    verdict: str
    guard: str
    reason: str
    request: Dict[str, Any]
    decisions: Tuple[GuardDecision, ...]
    delta: Tuple[str, ...] = ()
    warnings: Tuple[str, ...] = ()

    @property
    def admitted(self) -> bool:
        return self.verdict in ("admitted", "repaired")

    def commit(self) -> None:
        """Apply every guard's state change for this admitted batch.

        Call exactly once, and only after the batch has been accepted
        downstream (enqueued for folding).  A blocked or queue-refused
        request is never committed, so guards charge nothing for it.
        Each callback receives the final (post-repair) request.
        """
        if not self.admitted:
            raise ConfigurationError(
                "cannot commit a blocked outcome (nothing was admitted)"
            )
        if getattr(self, "_committed", False):
            raise ConfigurationError("outcome already committed")
        object.__setattr__(self, "_committed", True)
        for decision in self.decisions:
            if decision.commit is not None:
                decision.commit(self.request)


class Guard:
    """Base guard: stateless or deterministically stateful check.

    :meth:`check` must not mutate guard state — a stateful guard rules
    against its committed state and hands the mutation to the decision's
    ``commit`` callback (applied post-admission; see module docstring).
    """

    name = "guard"

    def check(self, request: Dict[str, Any]) -> GuardDecision:
        raise NotImplementedError

    def check_array(self, request: Dict[str, Any]) -> GuardDecision:
        """Rule on a *columnar* request (numpy column buffers).

        Defaults to :meth:`check`, which suits any guard that only
        reads scalar fields — ``op``, ``epoch``, ``claimed_loss`` are
        identical in both representations.  Guards that inspect
        per-report columns override this with a vectorized
        implementation; the same two-phase commit contract applies.
        """
        return self.check(request)

    # Decision helpers ---------------------------------------------------
    def allow(
        self, commit: Optional[Callable[[Dict[str, Any]], None]] = None
    ) -> GuardDecision:
        return GuardDecision(Verdict.ALLOW, self.name, commit=commit)

    def warn(
        self,
        reason: str,
        commit: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> GuardDecision:
        return GuardDecision(Verdict.WARN, self.name, reason, commit=commit)

    def block(self, reason: str) -> GuardDecision:
        return GuardDecision(Verdict.BLOCK, self.name, reason)

    def repair(
        self,
        request: Dict[str, Any],
        delta: Sequence[str],
        reason: str = "",
        commit: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> GuardDecision:
        if not delta:
            raise ConfigurationError(
                f"{self.name}: REPAIR must record at least one delta entry"
            )
        return GuardDecision(
            Verdict.REPAIR,
            self.name,
            reason,
            request=request,
            delta=tuple(delta),
            commit=commit,
        )


def _is_number(x: Any) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def _is_int(x: Any) -> bool:
    return isinstance(x, int) and not isinstance(x, bool)


class SchemaGuard(Guard):
    """Strict structural validation of submission requests.

    BLOCKs malformed batches (missing/mistyped fields, non-finite
    values, length mismatches, oversized batches).  With
    ``coerce=True`` (default) it REPAIRs the recoverable cases instead
    of blocking them, recording each change in the delta:

    * numeric strings in ``values`` / ``claimed_loss`` → parsed floats,
    * an integral float ``epoch`` (``3.0``) → the int ``3``,
    * unknown extra fields → dropped.

    Anything the repair cannot make exact — a NaN, an unparseable
    string, a negative count — is a BLOCK, never a guess.
    """

    name = "schema"

    _SUBMIT_KEYS = frozenset(
        {"op", "epoch", "device_ids", "values", "claimed_loss"}
    )
    _COUNTS_KEYS = frozenset(
        {"op", "epoch", "counts", "n_reports", "claimed_loss"}
    )

    def __init__(self, max_batch: int = 65536, coerce: bool = True):
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        self.max_batch = int(max_batch)
        self.coerce = bool(coerce)

    def check(self, request: Dict[str, Any]) -> GuardDecision:
        op = request.get("op")
        if op == "submit":
            return self._check_submit(request)
        if op == "submit_counts":
            return self._check_counts(request)
        return self.block(f"unknown submission op {op!r}")

    # -----------------------------------------------------------------
    def _strip_extras(
        self, request: Dict[str, Any], allowed: frozenset, delta: List[str]
    ) -> Optional[Dict[str, Any]]:
        extras = sorted(set(request) - allowed)
        if not extras:
            return dict(request)
        if not self.coerce:
            return None
        out = {k: v for k, v in request.items() if k in allowed}
        delta.extend(f"{k}: <dropped unknown field>" for k in extras)
        return out

    def _coerce_epoch(
        self, req: Dict[str, Any], delta: List[str]
    ) -> Optional[int]:
        epoch = req.get("epoch")
        if _is_int(epoch):
            return epoch if epoch >= 0 else None
        if (
            self.coerce
            and isinstance(epoch, float)
            and math.isfinite(epoch)
            and epoch == int(epoch)
            and epoch >= 0
        ):
            delta.append(f"epoch: {epoch!r} -> {int(epoch)}")
            return int(epoch)
        return None

    def _coerce_loss(
        self, req: Dict[str, Any], delta: List[str]
    ) -> Optional[float]:
        loss = req.get("claimed_loss")
        if isinstance(loss, str) and self.coerce:
            try:
                parsed = float(loss)
            except ValueError:
                return None
            delta.append(f"claimed_loss: {loss!r} -> {parsed!r}")
            loss = parsed
        if not _is_number(loss):
            return None
        loss = float(loss)
        if not math.isfinite(loss) or loss <= 0.0:
            return None
        return loss

    def _check_submit(self, request: Dict[str, Any]) -> GuardDecision:
        delta: List[str] = []
        req = self._strip_extras(request, self._SUBMIT_KEYS, delta)
        if req is None:
            extras = sorted(set(request) - self._SUBMIT_KEYS)
            return self.block(f"unknown fields {extras} (strict schema)")
        missing = sorted(self._SUBMIT_KEYS - set(req))
        if missing:
            return self.block(f"missing fields {missing}")
        epoch = self._coerce_epoch(req, delta)
        if epoch is None:
            return self.block(
                f"epoch must be a nonnegative integer, got {req.get('epoch')!r}"
            )
        ids = req.get("device_ids")
        values = req.get("values")
        if not isinstance(ids, list) or not isinstance(values, list):
            return self.block("device_ids and values must be arrays")
        if not values:
            return self.block("empty batch (no values)")
        if len(ids) != len(values):
            return self.block(
                f"device_ids ({len(ids)}) and values ({len(values)}) disagree"
            )
        if len(values) > self.max_batch:
            return self.block(
                f"batch of {len(values)} exceeds max_batch={self.max_batch}"
            )
        for i, device_id in enumerate(ids):
            if not isinstance(device_id, str) or not device_id:
                return self.block(f"device_ids[{i}] must be a nonempty string")
        clean_values: List[float] = []
        for i, v in enumerate(values):
            if isinstance(v, str) and self.coerce:
                try:
                    parsed = float(v)
                except ValueError:
                    return self.block(f"values[{i}] is not numeric: {v!r}")
                delta.append(f"values[{i}]: {v!r} -> {parsed!r}")
                v = parsed
            if not _is_number(v):
                return self.block(f"values[{i}] must be a number, got {v!r}")
            v = float(v)
            if not math.isfinite(v):
                return self.block(f"values[{i}] is not finite")
            clean_values.append(v)
        loss = self._coerce_loss(req, delta)
        if loss is None:
            return self.block(
                f"claimed_loss must be a positive finite number, "
                f"got {req.get('claimed_loss')!r}"
            )
        out = {
            "op": "submit",
            "epoch": epoch,
            "device_ids": list(ids),
            "values": clean_values,
            "claimed_loss": loss,
        }
        if delta:
            return self.repair(out, delta, reason="schema coercion")
        return GuardDecision(Verdict.ALLOW, self.name, request=out)

    def _check_counts(self, request: Dict[str, Any]) -> GuardDecision:
        delta: List[str] = []
        req = self._strip_extras(request, self._COUNTS_KEYS, delta)
        if req is None:
            extras = sorted(set(request) - self._COUNTS_KEYS)
            return self.block(f"unknown fields {extras} (strict schema)")
        missing = sorted(self._COUNTS_KEYS - set(req))
        if missing:
            return self.block(f"missing fields {missing}")
        epoch = self._coerce_epoch(req, delta)
        if epoch is None:
            return self.block(
                f"epoch must be a nonnegative integer, got {req.get('epoch')!r}"
            )
        counts = req.get("counts")
        if not isinstance(counts, list) or len(counts) < 2:
            return self.block("counts must be an array of >= 2 categories")
        for i, c in enumerate(counts):
            if not _is_int(c) or c < 0:
                return self.block(
                    f"counts[{i}] must be a nonnegative integer, got {c!r}"
                )
        n_reports = req.get("n_reports")
        if not _is_int(n_reports) or n_reports < 1:
            return self.block(
                f"n_reports must be a positive integer, got {n_reports!r}"
            )
        if sum(counts) > n_reports * len(counts):
            return self.block(
                f"counts sum {sum(counts)} impossible for {n_reports} reports "
                f"over {len(counts)} categories"
            )
        if n_reports > self.max_batch:
            return self.block(
                f"batch of {n_reports} exceeds max_batch={self.max_batch}"
            )
        loss = self._coerce_loss(req, delta)
        if loss is None:
            return self.block(
                f"claimed_loss must be a positive finite number, "
                f"got {req.get('claimed_loss')!r}"
            )
        out = {
            "op": "submit_counts",
            "epoch": epoch,
            "counts": [int(c) for c in counts],
            "n_reports": int(n_reports),
            "claimed_loss": loss,
        }
        if delta:
            return self.repair(out, delta, reason="schema coercion")
        return GuardDecision(Verdict.ALLOW, self.name, request=out)

    # -- Columnar fast path -------------------------------------------
    def check_array(self, request: Dict[str, Any]) -> GuardDecision:
        """Vectorized structural validation of a columnar request.

        The binary decoder already guarantees the dtypes (float64
        values, ``S`` ids, int64 counts) and column-length agreement,
        so the columnar schema check reduces to the *content* rules —
        finiteness, non-empty ids, valid UTF-8, batch bounds — ruled
        with single numpy sweeps.  Coercion never arises (the wire is
        typed), which matches the scalar path on equivalently-typed
        input: neither coerces, both ALLOW or BLOCK with the same
        reason.

        The **canonical** columnar submit this guard emits carries the
        value column untouched (the zero-copy f8 view) and the id
        column decoded to a list of Python strings — the chain's one
        and only id decode, reused by the stateful guards (str-keyed
        bookkeeping) and by the fold (str-keyed disclosure).
        """
        op = request.get("op")
        if op == "submit":
            return self._check_submit_array(request)
        if op == "submit_counts":
            return self._check_counts_array(request)
        return self.block(f"unknown submission op {op!r}")

    def _check_submit_array(self, request: Dict[str, Any]) -> GuardDecision:
        epoch = request.get("epoch")
        if not _is_int(epoch) or epoch < 0:
            return self.block(
                f"epoch must be a nonnegative integer, got {epoch!r}"
            )
        ids = request.get("device_ids")
        values = request.get("values")
        if not isinstance(ids, np.ndarray) or not isinstance(values, np.ndarray):
            return self.block("device_ids and values must be arrays")
        if values.size == 0:
            return self.block("empty batch (no values)")
        if ids.size != values.size:
            return self.block(
                f"device_ids ({ids.size}) and values ({values.size}) disagree"
            )
        if values.size > self.max_batch:
            return self.block(
                f"batch of {values.size} exceeds max_batch={self.max_batch}"
            )
        try:
            id_strs = [raw.decode("utf-8") for raw in ids.tolist()]
        except UnicodeDecodeError:
            bad = next(
                i for i, raw in enumerate(ids.tolist())
                if not _decodes(raw)
            )
            return self.block(f"device_ids[{bad}] is not valid UTF-8")
        empty = ids == b""
        if empty.any():
            i = int(np.flatnonzero(empty)[0])
            return self.block(f"device_ids[{i}] must be a nonempty string")
        finite = np.isfinite(values)
        if not finite.all():
            i = int(np.flatnonzero(~finite)[0])
            return self.block(f"values[{i}] is not finite")
        loss = request.get("claimed_loss")
        if not _is_number(loss) or not math.isfinite(float(loss)) or loss <= 0.0:
            return self.block(
                f"claimed_loss must be a positive finite number, got {loss!r}"
            )
        out = {
            "op": "submit",
            "epoch": epoch,
            "device_ids": id_strs,
            "values": values,
            "claimed_loss": float(loss),
        }
        return GuardDecision(Verdict.ALLOW, self.name, request=out)

    def _check_counts_array(self, request: Dict[str, Any]) -> GuardDecision:
        epoch = request.get("epoch")
        if not _is_int(epoch) or epoch < 0:
            return self.block(
                f"epoch must be a nonnegative integer, got {epoch!r}"
            )
        counts = request.get("counts")
        if not isinstance(counts, np.ndarray) or counts.size < 2:
            return self.block("counts must be an array of >= 2 categories")
        negative = counts < 0
        if negative.any():
            i = int(np.flatnonzero(negative)[0])
            return self.block(
                f"counts[{i}] must be a nonnegative integer, "
                f"got {int(counts[i])!r}"
            )
        n_reports = request.get("n_reports")
        if not _is_int(n_reports) or n_reports < 1:
            return self.block(
                f"n_reports must be a positive integer, got {n_reports!r}"
            )
        total = int(counts.sum())
        if total > n_reports * counts.size:
            return self.block(
                f"counts sum {total} impossible for {n_reports} reports "
                f"over {counts.size} categories"
            )
        if n_reports > self.max_batch:
            return self.block(
                f"batch of {n_reports} exceeds max_batch={self.max_batch}"
            )
        loss = request.get("claimed_loss")
        if not _is_number(loss) or not math.isfinite(float(loss)) or loss <= 0.0:
            return self.block(
                f"claimed_loss must be a positive finite number, got {loss!r}"
            )
        out = {
            "op": "submit_counts",
            "epoch": epoch,
            "counts": counts,
            "n_reports": int(n_reports),
            "claimed_loss": float(loss),
        }
        return GuardDecision(Verdict.ALLOW, self.name, request=out)


def _decodes(raw: bytes) -> bool:
    try:
        raw.decode("utf-8")
        return True
    except UnicodeDecodeError:
        return False


class EpochBudgetGuard(Guard):
    """Epoch-window and claimed-loss/budget validation.

    * Epochs beyond ``epoch_horizon`` are BLOCKed (a device reporting
      for epoch 10^9 is malfunctioning or probing).
    * ``claimed_loss`` above ``max_claimed_loss`` is BLOCKed — the
      server will not fold reports whose claimed disclosure is absurd;
      above ``warn_claimed_loss`` it is admitted with a WARN.
    * With a ``device_budget``, the guard tracks each device's
      cumulative claimed loss across admitted batches and BLOCKs
      batches that would push any device past it — the server-side
      mirror of the on-device accountant (conservative, like
      :meth:`~repro.aggregation.AggregationServer.worst_case_disclosure`).

    Budget state is charged by the decision's ``commit`` callback, not
    at check time, and against the chain's *final* request — so a batch
    refused downstream (queue-full ``busy``, shutdown) charges nothing,
    and reports a later guard repairs away are never charged.  The spend
    map is LRU-bounded at ``max_devices_tracked`` entries: evicting a
    device forgets its accumulated spend, so size the bound above the
    expected fleet cardinality — the bound trades completeness against
    a malicious fleet of throwaway device ids exhausting server memory.

    Runs after :class:`SchemaGuard`, so fields are already typed.
    """

    name = "epoch-budget"

    def __init__(
        self,
        epoch_horizon: int = 1_000_000,
        max_claimed_loss: float = 16.0,
        warn_claimed_loss: Optional[float] = None,
        device_budget: Optional[float] = None,
        max_devices_tracked: int = 1_048_576,
    ):
        if epoch_horizon < 0:
            raise ConfigurationError("epoch_horizon must be >= 0")
        if max_claimed_loss <= 0:
            raise ConfigurationError("max_claimed_loss must be positive")
        if max_devices_tracked < 1:
            raise ConfigurationError("max_devices_tracked must be >= 1")
        self.epoch_horizon = int(epoch_horizon)
        self.max_claimed_loss = float(max_claimed_loss)
        self.warn_claimed_loss = float(
            warn_claimed_loss if warn_claimed_loss is not None
            else max_claimed_loss / 2.0
        )
        self.device_budget = None if device_budget is None else float(device_budget)
        self.max_devices_tracked = int(max_devices_tracked)
        self._spent: Dict[str, float] = {}

    def _charge(self, final: Dict[str, Any]) -> None:
        """Commit hook: charge spend for the devices that actually made
        it into the admitted batch (post-repair), LRU-bounded."""
        if self.device_budget is None or final.get("op") != "submit":
            return
        loss = final["claimed_loss"]
        ids = final["device_ids"]
        spent = self._spent
        # Fast path for the steady-state fleet batch: every id unique
        # within the batch and never charged before.  One C-level
        # ``update`` then lands each device at the dict tail with spend
        # ``0.0 + loss`` — bit-for-bit the value and the LRU position
        # the per-id walk below would produce.  Columnar requests land
        # here too: their id column is already the canonical str list
        # (decoded once by the schema guard), so either path's state —
        # values, insertion order, eviction victims — is byte-for-byte
        # the scalar path's.
        fresh = dict.fromkeys(ids, 0.0 + loss)
        if len(fresh) == len(ids) and spent.keys().isdisjoint(fresh):
            spent.update(fresh)
        else:
            pop = spent.pop
            for device_id in ids:
                # Pop + reinsert keeps the dict insertion-ordered by
                # last charge, making the eviction below
                # least-recently-charged.
                spent[device_id] = pop(device_id, 0.0) + loss
        while len(spent) > self.max_devices_tracked:
            del spent[next(iter(spent))]

    def check(self, request: Dict[str, Any]) -> GuardDecision:
        epoch = request["epoch"]
        if epoch > self.epoch_horizon:
            return self.block(
                f"epoch {epoch} beyond horizon {self.epoch_horizon}"
            )
        loss = request["claimed_loss"]
        if loss > self.max_claimed_loss:
            return self.block(
                f"claimed_loss {loss:g} exceeds cap {self.max_claimed_loss:g}"
            )
        commit = None
        if self.device_budget is not None and request["op"] == "submit":
            ids = request["device_ids"]
            threshold = self.device_budget + 1e-12
            if self._spent.keys().isdisjoint(ids):
                # Nobody in this batch has been charged: each spend is
                # 0.0, so either every distinct id is over (loss alone
                # busts the budget) or none is — same verdict the walk
                # below reaches, minus the 1024 dict probes.
                over = sorted(set(ids)) if loss > threshold else []
            else:
                spent_get = self._spent.get
                over = sorted(
                    {
                        device_id
                        for device_id in ids
                        if spent_get(device_id, 0.0) + loss > threshold
                    }
                )
            if over:
                shown = ", ".join(over[:5]) + (", ..." if len(over) > 5 else "")
                return self.block(
                    f"{len(over)} device(s) past budget "
                    f"{self.device_budget:g}: {shown}"
                )
            commit = self._charge
        if loss > self.warn_claimed_loss:
            return self.warn(
                f"claimed_loss {loss:g} above warning level "
                f"{self.warn_claimed_loss:g}",
                commit=commit,
            )
        return self.allow(commit=commit)

    # -- Columnar fast path -------------------------------------------
    def check_array(self, request: Dict[str, Any]) -> GuardDecision:
        """Columnar ruling — :meth:`check` verbatim, by construction.

        Everything this guard reads is already scalar (``epoch``,
        ``claimed_loss``) or the canonical str id list the schema guard
        decoded once, so the scalar ruling *is* the columnar ruling:
        same set-comprehension budget screen over the same strings,
        same commit hook, zero extra per-report work.
        """
        return self.check(request)


class RateLimitGuard(Guard):
    """Per-device, per-epoch report-rate limiting.

    The fleet contract is one report per device per epoch; a device
    (or a replaying middlebox) exceeding ``per_epoch_limit`` is either
    REPAIRed — its over-limit reports removed from the batch, each
    removal recorded in the delta — or, if the repair would empty the
    batch, the batch is BLOCKed.  Counting is deterministic in the
    request sequence; only the most recent ``max_epochs_tracked``
    epochs are retained so state stays bounded.

    Like the budget guard, per-device counts are applied by the
    decision's ``commit`` callback: a batch the queue refuses as
    ``busy`` consumes nobody's rate allowance, so the documented
    same-batch retry is not self-blocking.
    """

    name = "rate-limit"

    def __init__(self, per_epoch_limit: int = 1, max_epochs_tracked: int = 64):
        if per_epoch_limit < 1:
            raise ConfigurationError("per_epoch_limit must be >= 1")
        if max_epochs_tracked < 1:
            raise ConfigurationError("max_epochs_tracked must be >= 1")
        self.per_epoch_limit = int(per_epoch_limit)
        self.max_epochs_tracked = int(max_epochs_tracked)
        self._seen: Dict[int, Dict[str, int]] = {}

    def _apply(self, epoch: int, pending: Dict[str, int]) -> None:
        """Commit hook: fold this batch's per-device counts into the
        committed epoch state (creating/evicting epoch slots here, not
        at check time)."""
        counts = self._seen.get(epoch)
        if counts is None:
            counts = self._seen[epoch] = {}
            while len(self._seen) > self.max_epochs_tracked:
                del self._seen[min(self._seen)]
        if counts.keys().isdisjoint(pending):
            # First sighting of every device this epoch: one C-level
            # merge writes the same counts in the same order as the
            # per-id fold below.
            counts.update(pending)
        else:
            for device_id, n in pending.items():
                counts[device_id] = counts.get(device_id, 0) + n

    def check(self, request: Dict[str, Any]) -> GuardDecision:
        if request["op"] != "submit":
            # Count batches carry no device ids; nothing to rate-limit.
            return self.allow()
        epoch = request["epoch"]
        counts = self._seen.get(epoch, {})
        ids = request["device_ids"]
        # Fast path for the steady-state fleet batch: ids unique within
        # the batch and unseen this epoch, so (with the limit >= 1 the
        # constructor enforces) every report is kept and each device's
        # pending count is exactly 1 — the same ``pending`` dict, in
        # the same insertion order, the walk below would build.
        first_seen = dict.fromkeys(ids, 1)
        if len(first_seen) == len(ids) and counts.keys().isdisjoint(first_seen):

            def commit_fast(
                final: Dict[str, Any], epoch=epoch, pending=first_seen
            ) -> None:
                self._apply(epoch, pending)

            return self.allow(commit=commit_fast)
        keep: List[int] = []
        dropped: List[str] = []
        pending: Dict[str, int] = {}
        for i, device_id in enumerate(request["device_ids"]):
            used = counts.get(device_id, 0) + pending.get(device_id, 0)
            if used >= self.per_epoch_limit:
                dropped.append(
                    f"values[{i}]: <dropped: device {device_id!r} over "
                    f"{self.per_epoch_limit}/epoch rate limit>"
                )
            else:
                pending[device_id] = pending.get(device_id, 0) + 1
                keep.append(i)

        def commit(final: Dict[str, Any], epoch=epoch, pending=pending) -> None:
            self._apply(epoch, pending)

        if not dropped:
            return self.allow(commit=commit)
        if not keep:
            return self.block(
                f"every report in the batch is over the "
                f"{self.per_epoch_limit}/epoch rate limit"
            )
        repaired = dict(request)
        repaired["device_ids"] = [request["device_ids"][i] for i in keep]
        values = request["values"]
        if isinstance(values, np.ndarray):
            # Columnar batch: the surviving reports are one fancy-index
            # over the value column — the repaired request stays
            # columnar (no per-report Python floats materialize).
            repaired["values"] = values[np.asarray(keep, dtype=np.intp)]
        else:
            repaired["values"] = [values[i] for i in keep]
        return self.repair(repaired, dropped, reason="rate limit", commit=commit)

    # -- Columnar fast path -------------------------------------------
    def check_array(self, request: Dict[str, Any]) -> GuardDecision:
        """Columnar ruling — the scalar walk over the decoded id list.

        Per-device rate state is a str-keyed dict shared with the
        scalar path, and the canonical columnar request already carries
        its ids as the once-decoded str list — so the cheapest
        *correct* columnar ruling is the scalar walk itself (one dict
        probe per report beats ``np.unique`` + per-unique lookups, and
        is trivially order-identical).  Only the repair differs: the
        value column is masked with one fancy-index instead of a
        per-element rebuild (see :meth:`check`).
        """
        return self.check(request)


class GuardChain:
    """Run guards in order; fold their decisions into one outcome.

    REPAIR hands the repaired request to the next guard; WARN records
    and continues; BLOCK stops the chain.  The final verdict is the
    trichotomy described in the module docstring.

    :meth:`check` is side-effect-free; stateful guards hand their
    mutations to the outcome, and the caller applies them with
    :meth:`ChainOutcome.commit` once (and only if) the admitted batch
    is actually accepted downstream.
    """

    def __init__(self, guards: Sequence[Guard]):
        if not guards:
            raise ConfigurationError("a guard chain needs at least one guard")
        self.guards = list(guards)

    def check(self, request: Dict[str, Any]) -> ChainOutcome:
        return self._run(request, columnar=False)

    def check_array(self, request: Dict[str, Any]) -> ChainOutcome:
        """The columnar analogue of :meth:`check` — same trichotomy,
        same two-phase commit, vectorized guard rulings throughout."""
        return self._run(request, columnar=True)

    def _run(self, request: Dict[str, Any], columnar: bool) -> ChainOutcome:
        decisions: List[GuardDecision] = []
        delta: List[str] = []
        warnings: List[str] = []
        current = request
        for guard in self.guards:
            decision = guard.check_array(current) if columnar else guard.check(current)
            decisions.append(decision)
            if decision.verdict is Verdict.BLOCK:
                return ChainOutcome(
                    verdict="blocked",
                    guard=decision.guard,
                    reason=decision.reason,
                    request=current,
                    decisions=tuple(decisions),
                    delta=tuple(delta),
                    warnings=tuple(warnings),
                )
            if decision.verdict is Verdict.WARN:
                warnings.append(f"{decision.guard}: {decision.reason}")
            if decision.verdict is Verdict.REPAIR:
                delta.extend(decision.delta)
            if decision.request is not None:
                current = decision.request
        return ChainOutcome(
            verdict="repaired" if delta else "admitted",
            guard="chain",
            reason="; ".join(warnings),
            request=current,
            decisions=tuple(decisions),
            delta=tuple(delta),
            warnings=tuple(warnings),
        )


def default_chain(
    max_batch: int = 65536,
    coerce: bool = True,
    epoch_horizon: int = 1_000_000,
    max_claimed_loss: float = 16.0,
    device_budget: Optional[float] = None,
    per_epoch_limit: int = 1,
    max_devices_tracked: int = 1_048_576,
) -> GuardChain:
    """The service's standard chain: schema → epoch/budget → rate limit."""
    return GuardChain(
        [
            SchemaGuard(max_batch=max_batch, coerce=coerce),
            EpochBudgetGuard(
                epoch_horizon=epoch_horizon,
                max_claimed_loss=max_claimed_loss,
                device_budget=device_budget,
                max_devices_tracked=max_devices_tracked,
            ),
            RateLimitGuard(per_epoch_limit=per_epoch_limit),
        ]
    )
