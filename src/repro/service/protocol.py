"""JSONL wire format between reporting devices and the ingestion service.

One JSON object per ``\\n``-terminated line, both directions.  Requests:

``{"op": "submit", "epoch": E, "device_ids": [...], "values": [...],
"claimed_loss": L}``
    One scalar report batch — the network form of
    :meth:`~repro.aggregation.AggregationServer.submit_array`.

``{"op": "submit_counts", "epoch": E, "counts": [...], "n_reports": N,
"claimed_loss": L}``
    One categorical support-count batch
    (:meth:`~repro.aggregation.AggregationServer.submit_counts`).

``{"op": "snapshot"}`` / ``{"op": "metrics"}`` / ``{"op": "ping"}``
    Read-only endpoints: aggregation state, admission counters, liveness.

Responses always carry ``status``: ``admitted`` / ``repaired`` /
``blocked`` / ``busy`` / ``ok`` / ``error``, plus status-specific fields
(``seq``, ``guard``, ``reason``, ``delta``, ``queue_depth``, payloads).

Decoding is *strict at the boundary*: :func:`decode_line` rejects
anything that is not a JSON object with a string ``op`` — but it decides
nothing about the batch's content.  Content admission (types, ranges,
finiteness, rate limits) is the guard chain's job, so that every
content decision is an auditable ALLOW/WARN/BLOCK/REPAIR with a reason,
not a parse error.

Floats survive the wire bit-for-bit: Python's ``json`` emits
``repr``-round-trippable doubles, which is what makes a socket-fed
epoch bit-identical to the same epoch submitted in-process.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

from ..errors import ReproError

__all__ = ["WireError", "ReportBatch", "decode_line", "encode", "KNOWN_OPS"]

#: Operations the service understands.
KNOWN_OPS = ("submit", "submit_counts", "snapshot", "metrics", "ping", "shutdown")

#: Hard cap on one request line — a malicious peer must not be able to
#: balloon the reader's buffer (64 MiB of JSON is ~4M reports, far past
#: any sane batch).
MAX_LINE_BYTES = 64 * 1024 * 1024


class WireError(ReproError):
    """A line failed wire-level decoding (malformed JSON, wrong shape)."""


@dataclasses.dataclass(frozen=True)
class ReportBatch:
    """A *guard-admitted* scalar report batch, ready for the fold.

    Constructed only by the guard chain (schema guard output) — raw wire
    dicts never reach the aggregation server directly.
    """

    epoch: int
    device_ids: List[str]
    values: List[float]
    claimed_loss: float

    @property
    def n_reports(self) -> int:
        return len(self.values)


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Strictly decode one request line into a dict with a string ``op``.

    Raises :class:`WireError` on anything else — oversized payloads,
    non-UTF-8 bytes, non-JSON, JSON scalars/arrays, or a missing/non-str
    ``op``.  Content validation beyond that shape is deliberately left
    to the guard chain (see module docstring).
    """
    if len(raw) > MAX_LINE_BYTES:
        raise WireError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"request line is not UTF-8: {exc}") from None
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError(f"request line is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise WireError(f"request must be a JSON object, got {type(obj).__name__}")
    op = obj.get("op")
    if not isinstance(op, str):
        raise WireError("request needs a string 'op' field")
    return obj


def encode(obj: Dict[str, Any]) -> bytes:
    """Encode one message as a JSONL line (sorted keys, trailing ``\\n``)."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def response(status: str, **fields: Any) -> Dict[str, Any]:
    """Build a response object (``status`` plus status-specific fields)."""
    out: Dict[str, Any] = {"status": status}
    out.update(fields)
    return out


def peer_label(peername: Optional[Any]) -> str:
    """Stable ``host:port`` label for a connection's trace channel."""
    if isinstance(peername, (tuple, list)) and len(peername) >= 2:
        return f"{peername[0]}:{peername[1]}"
    return str(peername) if peername else "unknown"
