"""Wire formats between reporting devices and the ingestion service.

Two negotiated wires share one TCP port:

**JSONL (wire v1, the default).**  One JSON object per ``\\n``-terminated
line, both directions.  Requests:

``{"op": "submit", "epoch": E, "device_ids": [...], "values": [...],
"claimed_loss": L}``
    One scalar report batch — the network form of
    :meth:`~repro.aggregation.AggregationServer.submit_array`.

``{"op": "submit_counts", "epoch": E, "counts": [...], "n_reports": N,
"claimed_loss": L}``
    One categorical support-count batch
    (:meth:`~repro.aggregation.AggregationServer.submit_counts`).

``{"op": "snapshot"}`` / ``{"op": "metrics"}`` / ``{"op": "ping"}``
    Read-only endpoints: aggregation state, admission counters, liveness.

``{"op": "hello", "wire": "jsonl"|"binary", "version": V}``
    Per-connection wire negotiation.  A connection starts in JSONL; an
    acknowledged ``hello`` with ``wire="binary"`` switches its *request*
    stream to binary columnar frames (below).  Responses stay JSONL on
    both wires, so replies are greppable and the reply path is shared.

**Binary columnar (wire v2).**  A length-prefixed frame per request:
a ``uint32`` little-endian payload length, then a fixed 28-byte header
(magic, opcode, dtype tag, count, aux, epoch, claimed loss) followed by
the raw little-endian column buffers — ``values`` as ``float64[n]`` and
``device_ids`` as a fixed-width NUL-padded ``S{w}[n]`` column for
``submit``; ``counts`` as ``int64[d]`` for ``submit_counts``.  The
server decodes columns zero-copy via ``np.frombuffer`` and the guard
chain runs its vectorized array path — no per-report Python objects are
ever materialized.  Read-only ops ride the binary connection inside an
``OP_JSON`` escape frame carrying one JSONL request line.  The same
64 MiB fence bounds a frame as bounds a JSONL line.

Responses always carry ``status``: ``admitted`` / ``repaired`` /
``blocked`` / ``busy`` / ``ok`` / ``error``, plus status-specific fields
(``seq``, ``guard``, ``reason``, ``delta``, ``queue_depth``, payloads).

Decoding is *strict at the boundary*: :func:`decode_line` rejects
anything that is not a JSON object with a string ``op``, and
:func:`decode_binary_frame` rejects anything that is not a well-formed
frame (bad magic, unknown opcode, wrong dtype tag, length/column
mismatch) — but neither decides anything about the batch's *content*.
Content admission (types, ranges, finiteness, rate limits) is the guard
chain's job, so that every content decision is an auditable
ALLOW/WARN/BLOCK/REPAIR with a reason, not a parse error.

Floats survive both wires bit-for-bit: Python's ``json`` emits
``repr``-round-trippable doubles, and the binary frame ships the raw
IEEE-754 bytes — which is what makes a socket-fed epoch bit-identical
to the same epoch submitted in-process on either wire.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import struct
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ReproError

__all__ = [
    "WireError",
    "ReportBatch",
    "decode_line",
    "encode",
    "encode_cached",
    "KNOWN_OPS",
    "BINARY_WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "encode_binary_submit",
    "encode_binary_counts",
    "encode_binary_json",
    "frame_prefix",
    "decode_binary_frame",
    "is_columnar",
]

#: Operations the service understands.
KNOWN_OPS = (
    "submit",
    "submit_counts",
    "snapshot",
    "metrics",
    "ping",
    "shutdown",
    "hello",
)

#: Hard cap on one request line — a malicious peer must not be able to
#: balloon the reader's buffer (64 MiB of JSON is ~4M reports, far past
#: any sane batch).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: The same fence for one binary frame's payload (prefix excluded).
MAX_FRAME_BYTES = MAX_LINE_BYTES

#: Version negotiated by ``{"op": "hello", "wire": "binary"}``.
BINARY_WIRE_VERSION = 2

#: Binary frame header: magic, opcode, dtype tag, count, aux, epoch,
#: claimed loss — all little-endian, 28 bytes.
_HEADER = struct.Struct("<2sBBIIQd")
_MAGIC = b"R2"

#: Frame opcodes.
OP_JSON = 0        #: escape frame: columns hold one JSONL request line
OP_SUBMIT = 1
OP_SUBMIT_COUNTS = 2

#: Column dtype tags.
DTYPE_NONE = 0     #: OP_JSON frames carry no typed column
DTYPE_F64 = 1      #: little-endian IEEE-754 float64
DTYPE_I64 = 2      #: little-endian int64


class WireError(ReproError):
    """A line failed wire-level decoding (malformed JSON, wrong shape)."""


@dataclasses.dataclass(frozen=True)
class ReportBatch:
    """A *guard-admitted* scalar report batch, ready for the fold.

    Constructed only by the guard chain (schema guard output) — raw wire
    dicts never reach the aggregation server directly.
    """

    epoch: int
    device_ids: List[str]
    values: List[float]
    claimed_loss: float

    @property
    def n_reports(self) -> int:
        return len(self.values)


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Strictly decode one request line into a dict with a string ``op``.

    Raises :class:`WireError` on anything else — oversized payloads,
    non-UTF-8 bytes, non-JSON, JSON scalars/arrays, or a missing/non-str
    ``op``.  Content validation beyond that shape is deliberately left
    to the guard chain (see module docstring).
    """
    if len(raw) > MAX_LINE_BYTES:
        raise WireError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"request line is not UTF-8: {exc}") from None
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError(f"request line is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise WireError(f"request must be a JSON object, got {type(obj).__name__}")
    op = obj.get("op")
    if not isinstance(op, str):
        raise WireError("request needs a string 'op' field")
    return obj


def encode(obj: Dict[str, Any]) -> bytes:
    """Encode one message as a JSONL line (sorted keys, trailing ``\\n``)."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def response(status: str, **fields: Any) -> Dict[str, Any]:
    """Build a response object (``status`` plus status-specific fields)."""
    out: Dict[str, Any] = {"status": status}
    out.update(fields)
    return out


@functools.lru_cache(maxsize=512)
def _encode_cached(status: str, items: tuple) -> bytes:
    return encode(response(status, **dict(items)))


def encode_cached(status: str, **fields: Any) -> bytes:
    """Encode a reply whose encoding is worth caching.

    The hot constant replies — the ping ack, the ``busy`` backpressure
    answer (its ``queue_depth`` is bounded by the queue capacity), the
    wire-level blocks — re-run ``json.dumps(sort_keys=True)`` thousands
    of times per second for byte-identical output.  This memoizes the
    encoded line on the (status, fields) pair; unhashable field values
    fall back to a plain :func:`encode`.  LRU-bounded so adversarial
    reason strings cannot grow the cache without bound.
    """
    try:
        return _encode_cached(status, tuple(sorted(fields.items())))
    except TypeError:  # an unhashable field value: encode uncached
        return encode(response(status, **fields))


# ---------------------------------------------------------------------------
# Binary columnar frames (wire v2)
# ---------------------------------------------------------------------------
def frame_prefix(payload: bytes) -> bytes:
    """The 4-byte little-endian length prefix for one frame payload."""
    return struct.pack("<I", len(payload))


def _ids_column(device_ids: Union[Sequence[str], np.ndarray]) -> np.ndarray:
    """Fixed-width ``S{w}`` column from device ids (client-side encode).

    Ids are NUL-padded to the batch's widest id, so NUL bytes and empty
    ids cannot be represented unambiguously — both are rejected here
    (the server-side schema guard independently blocks empty ids).
    """
    if isinstance(device_ids, np.ndarray) and device_ids.dtype.kind == "S":
        ids = device_ids
        if ids.dtype.itemsize < 1:
            raise WireError("device id column must have itemsize >= 1")
        return ids
    encoded = []
    for i, device_id in enumerate(device_ids):
        if isinstance(device_id, bytes):
            raw = device_id
        elif isinstance(device_id, str):
            raw = device_id.encode("utf-8")
        else:
            raise WireError(f"device_ids[{i}] must be a string")
        if not raw:
            raise WireError(f"device_ids[{i}] is empty")
        if b"\x00" in raw:
            raise WireError(
                f"device_ids[{i}] contains NUL, which the NUL-padded "
                "fixed-width id column cannot represent"
            )
        encoded.append(raw)
    return np.asarray(encoded, dtype="S")


def encode_binary_submit(
    epoch: int,
    device_ids: Union[Sequence[str], np.ndarray],
    values: Union[Sequence[float], np.ndarray],
    claimed_loss: float,
) -> bytes:
    """One ``submit`` batch as a length-prefixed binary columnar frame."""
    vals = np.ascontiguousarray(values, dtype="<f8").reshape(-1)
    ids = np.ascontiguousarray(_ids_column(device_ids))
    if ids.size != vals.size:
        raise WireError(
            f"device_ids ({ids.size}) and values ({vals.size}) disagree"
        )
    if epoch < 0 or epoch > 2**64 - 1:
        raise WireError(f"epoch {epoch!r} does not fit the uint64 frame field")
    header = _HEADER.pack(
        _MAGIC,
        OP_SUBMIT,
        DTYPE_F64,
        vals.size,
        ids.dtype.itemsize,
        epoch,
        float(claimed_loss),
    )
    payload = header + vals.tobytes() + ids.tobytes()
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    return frame_prefix(payload) + payload


def encode_binary_counts(
    epoch: int,
    counts: Union[Sequence[int], np.ndarray],
    n_reports: int,
    claimed_loss: float,
) -> bytes:
    """One ``submit_counts`` batch as a binary columnar frame."""
    vec = np.ascontiguousarray(counts, dtype="<i8").reshape(-1)
    if epoch < 0 or epoch > 2**64 - 1:
        raise WireError(f"epoch {epoch!r} does not fit the uint64 frame field")
    if n_reports < 0 or n_reports > 2**32 - 1:
        raise WireError(f"n_reports {n_reports!r} does not fit uint32")
    header = _HEADER.pack(
        _MAGIC,
        OP_SUBMIT_COUNTS,
        DTYPE_I64,
        int(n_reports),
        vec.size,
        epoch,
        float(claimed_loss),
    )
    payload = header + vec.tobytes()
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    return frame_prefix(payload) + payload


def encode_binary_json(obj: Dict[str, Any]) -> bytes:
    """Wrap one JSONL request in an ``OP_JSON`` escape frame.

    Lets read-only ops (``ping``/``metrics``/``snapshot``/``shutdown``)
    ride a binary-negotiated connection without a second socket.
    """
    line = json.dumps(obj, sort_keys=True).encode("utf-8")
    header = _HEADER.pack(_MAGIC, OP_JSON, DTYPE_NONE, len(line), 0, 0, 0.0)
    payload = header + line
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    return frame_prefix(payload) + payload


def decode_binary_frame(payload: bytes) -> Dict[str, Any]:
    """Strictly decode one frame payload into a request dict.

    Column buffers come back as **zero-copy** numpy views over the
    received bytes (``np.frombuffer``; read-only, which every consumer
    downstream honors).  A ``submit`` decodes to a *columnar* request —
    ``device_ids`` as an ``S{w}`` array and ``values`` as ``float64`` —
    recognizable via :func:`is_columnar`; an ``OP_JSON`` escape frame
    decodes through :func:`decode_line`.

    Raises :class:`WireError` on any structural defect: short payload,
    bad magic, unknown opcode, wrong dtype tag for the opcode, zero id
    width, or a payload length that does not exactly match the header's
    announced column sizes.  Content checks stay with the guard chain.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    if len(payload) < _HEADER.size:
        raise WireError(
            f"frame payload of {len(payload)} bytes is shorter than the "
            f"{_HEADER.size}-byte header"
        )
    magic, opcode, dtype_tag, n, aux, epoch, claimed_loss = _HEADER.unpack_from(
        payload, 0
    )
    if magic != _MAGIC:
        raise WireError(f"bad frame magic {magic!r} (want {_MAGIC!r})")
    body = len(payload) - _HEADER.size
    if opcode == OP_JSON:
        if dtype_tag != DTYPE_NONE:
            raise WireError(f"OP_JSON frame must use dtype tag 0, got {dtype_tag}")
        if body != n:
            raise WireError(
                f"OP_JSON frame announces {n} bytes but carries {body}"
            )
        return decode_line(payload[_HEADER.size:])
    if opcode == OP_SUBMIT:
        if dtype_tag != DTYPE_F64:
            raise WireError(
                f"submit frame values must be float64 (tag {DTYPE_F64}), "
                f"got dtype tag {dtype_tag}"
            )
        if aux < 1:
            raise WireError("submit frame device-id width must be >= 1")
        expected = n * 8 + n * aux
        if body != expected:
            raise WireError(
                f"submit frame announces {n} reports x (8 + {aux}) bytes = "
                f"{expected}, but carries {body}"
            )
        values = np.frombuffer(payload, dtype="<f8", count=n, offset=_HEADER.size)
        ids = np.frombuffer(
            payload, dtype=f"S{aux}", count=n, offset=_HEADER.size + n * 8
        )
        return {
            "op": "submit",
            "epoch": int(epoch),
            "device_ids": ids,
            "values": values,
            "claimed_loss": float(claimed_loss),
        }
    if opcode == OP_SUBMIT_COUNTS:
        if dtype_tag != DTYPE_I64:
            raise WireError(
                f"submit_counts frame counts must be int64 (tag {DTYPE_I64}), "
                f"got dtype tag {dtype_tag}"
            )
        expected = aux * 8
        if body != expected:
            raise WireError(
                f"submit_counts frame announces {aux} categories x 8 bytes = "
                f"{expected}, but carries {body}"
            )
        counts = np.frombuffer(payload, dtype="<i8", count=aux, offset=_HEADER.size)
        return {
            "op": "submit_counts",
            "epoch": int(epoch),
            "counts": counts,
            "n_reports": int(n),
            "claimed_loss": float(claimed_loss),
        }
    raise WireError(f"unknown frame opcode {opcode}")


def is_columnar(request: Dict[str, Any]) -> bool:
    """True when a request carries numpy column buffers (binary wire)."""
    return isinstance(
        request.get("values", request.get("counts")), np.ndarray
    )


def peer_label(peername: Optional[Any]) -> str:
    """Stable ``host:port`` label for a connection's trace channel."""
    if isinstance(peername, (tuple, list)) and len(peername) >= 2:
        return f"{peername[0]}:{peername[1]}"
    return str(peername) if peername else "unknown"
