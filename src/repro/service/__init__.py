"""Network-facing ingestion in front of the aggregation server.

This package is the first component of the reproduction that meets
*untrusted* input: device report batches arriving over a socket, from a
fleet the coordinator does not control.  Three layers:

* :mod:`repro.service.protocol` — the two negotiated wire formats
  (JSONL lines, the default, and the length-prefixed binary columnar
  frames of wire v2) and their strict decoders.
* :mod:`repro.service.guards` — the composable pre-admission guard
  chain.  Every guard returns ALLOW / WARN / BLOCK / REPAIR with a
  structured reason; the chain outcome is always one of *fully
  admitted*, *repaired with a recorded delta*, or *blocked with a
  reason* — no request is ever silently dropped.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio ingestion service (bounded queue, explicit BUSY backpressure,
  micro-batched folds into :class:`~repro.aggregation.AggregationServer`
  through its thread-safe ingest handle) and the blocking client +
  load generator that drive it.

Every admission decision is emitted as a
:class:`~repro.runtime.IngestEvent` through the same sink machinery as
release events, so ``python -m repro trace --replay`` audits admissions
next to releases.  See ``docs/service.md`` for the wire format, the
guard-chain semantics, and the backpressure contract.
"""

from .client import IngestClient, LoadReport, run_load
from .guards import (
    ChainOutcome,
    EpochBudgetGuard,
    Guard,
    GuardChain,
    GuardDecision,
    RateLimitGuard,
    SchemaGuard,
    Verdict,
    default_chain,
)
from .protocol import (
    BINARY_WIRE_VERSION,
    ReportBatch,
    decode_binary_frame,
    decode_line,
    encode,
    encode_binary_counts,
    encode_binary_submit,
    encode_cached,
)
from .server import IngestionService, ServiceConfig

__all__ = [
    "Verdict",
    "GuardDecision",
    "ChainOutcome",
    "Guard",
    "GuardChain",
    "SchemaGuard",
    "EpochBudgetGuard",
    "RateLimitGuard",
    "default_chain",
    "ReportBatch",
    "BINARY_WIRE_VERSION",
    "decode_line",
    "decode_binary_frame",
    "encode",
    "encode_binary_submit",
    "encode_binary_counts",
    "encode_cached",
    "IngestionService",
    "ServiceConfig",
    "IngestClient",
    "LoadReport",
    "run_load",
]
