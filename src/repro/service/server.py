"""The asyncio socket ingestion service (JSONL + binary columnar wires).

One :class:`IngestionService` fronts one
:class:`~repro.aggregation.AggregationServer`.  The data path is:

1. **Read** one request per wire unit — a ``\\n``-terminated JSONL line
   (:func:`~repro.service.protocol.decode_line`, the default wire), or,
   after a ``hello`` negotiated the binary wire, one length-prefixed
   columnar frame (:func:`~repro.service.protocol.decode_binary_frame`)
   whose column buffers decode zero-copy into numpy arrays.  Both wires
   are strict at the boundary and share the 64 MiB fence.
2. **Guard** submission requests through the pre-admission
   :class:`~repro.service.guards.GuardChain`; columnar requests take
   the vectorized ``check_array`` path — same trichotomy, no
   per-report Python objects.  The outcome is always *admitted*,
   *repaired with a recorded delta*, or *blocked with a reason*.
3. **Queue** admitted batches into a bounded queue.  A full queue is the
   backpressure signal: the request is answered ``busy`` immediately
   (explicit, retryable) instead of being buffered without bound.
   Stateful guard effects (rate counts, budget spend) are committed via
   :meth:`~repro.service.guards.ChainOutcome.commit` only *after* the
   batch lands in the queue — a ``busy`` refusal charges nothing, so
   retrying the same batch is admissible.
4. **Fold** — a single drain task pops whole batches, coalesces every
   batch already queued, and folds the burst through the thread-safe
   :class:`~repro.aggregation.IngestHandle` with **one**
   ``submit_many`` call: one lock acquisition and one executor hop per
   burst, still one ``submit_array``/``submit_counts`` per batch inside
   (batch boundaries and fold order are preserved — Chan's moment merge
   is order- but not splitting-invariant).  Columnar batches flow into
   ``submit_array(donate=True)`` with disclosure recorded per *unique*
   device.  Batches fold atomically and in admission order, which is
   what makes a socket-fed epoch bit-identical to the same batches
   submitted in-process on either wire — and why a killed service can
   never leave a *partially* ingested batch behind.

Every request produces exactly one :class:`~repro.runtime.IngestEvent`
through the same sink machinery as release events (the service's own
:class:`~repro.runtime.CounterSink` plus any extra sinks, e.g. a
:class:`~repro.runtime.JsonlSink` audit trail).

The service is deliberately **admission-acknowledging**: a ``submit``
response means the batch passed the guards and is queued, not that the
fold already ran.  The guards pre-validate everything the fold would
reject, so a fold failure is an *internal* error — counted, traced with
``guard="internal"``, and required to be zero by the CI smoke job.
"""

from __future__ import annotations

import asyncio
import dataclasses
import struct
import threading
import time
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..aggregation import AggregationServer
from ..errors import ConfigurationError, ReproError
from ..runtime import CounterSink, IngestEvent
from ..runtime.sinks import EventSink
from .guards import ChainOutcome, GuardChain, default_chain
from .protocol import (
    BINARY_WIRE_VERSION,
    KNOWN_OPS,
    MAX_FRAME_BYTES,
    WireError,
    decode_binary_frame,
    decode_line,
    encode,
    encode_cached,
    is_columnar,
    peer_label,
    response,
)

__all__ = ["ServiceConfig", "IngestionService", "ServiceHandle", "serve_in_thread"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Ingestion-service knobs (wire, guards, backpressure)."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 lets the OS pick; the bound port is on ``service.address``."""

    queue_capacity: int = 64
    """Pending-batch bound: the explicit backpressure threshold.  When
    the drain side falls this many whole batches behind, submissions
    get a ``busy`` response instead of unbounded buffering."""

    max_line_bytes: int = 8 * 1024 * 1024
    """Per-connection stream-reader limit (also the practical request
    cap; the wire decoder's own 64 MiB bound is a second fence)."""

    # Guard-chain parameters (see :func:`~repro.service.guards.default_chain`).
    max_batch: int = 65536
    coerce: bool = True
    epoch_horizon: int = 1_000_000
    max_claimed_loss: float = 16.0
    device_budget: Optional[float] = None
    per_epoch_limit: int = 1
    max_devices_tracked: int = 1_048_576

    allow_shutdown: bool = False
    """Honor the ``shutdown`` op.  Off by default — this endpoint meets
    untrusted peers, and remote shutdown is a denial-of-service door;
    enable it only for tests and supervised smoke runs."""

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.max_line_bytes < 1024:
            raise ConfigurationError("max_line_bytes must be >= 1024")


class IngestionService:
    """Asyncio ingestion front end over one aggregation server.

    Use :meth:`start`/:meth:`stop` from an event loop, or
    :func:`serve_in_thread` for a blocking caller (tests, benchmarks,
    the CLI client's self-serve mode).
    """

    def __init__(
        self,
        aggregation: AggregationServer,
        config: Optional[ServiceConfig] = None,
        chain: Optional[GuardChain] = None,
        extra_sinks: Iterable[EventSink] = (),
    ):
        self.config = config or ServiceConfig()
        self._handle = aggregation.ingest_handle()
        self.chain = chain if chain is not None else default_chain(
            max_batch=self.config.max_batch,
            coerce=self.config.coerce,
            epoch_horizon=self.config.epoch_horizon,
            max_claimed_loss=self.config.max_claimed_loss,
            device_budget=self.config.device_budget,
            per_epoch_limit=self.config.per_epoch_limit,
            max_devices_tracked=self.config.max_devices_tracked,
        )
        #: Admission counters — the ``metrics`` endpoint's payload.
        self.counters = CounterSink()
        self._sinks: List[EventSink] = [self.counters, *extra_sinks]
        self._seq = 0
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._done: Optional[asyncio.Event] = None
        self._stopped = False
        #: ``(host, port)`` actually bound, set by :meth:`start`.
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the socket, start the drain task, return ``(host, port)``."""
        if self._server is not None:
            raise ConfigurationError("service already started")
        self._queue = asyncio.Queue(maxsize=self.config.queue_capacity)
        self._done = asyncio.Event()
        self._drain_task = asyncio.ensure_future(self._drain())
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain queued batches, cancel tasks.

        ``drain=True`` folds everything already admitted before
        returning — an admitted batch is a promise.  ``drain=False``
        abandons the queue (whole batches only; a batch is never split).
        """
        if self._server is None or self._stopped:
            return
        # Setting the flag first quiesces *established* connections too:
        # _handle_line answers "blocked: service stopping" to further
        # submissions, so nothing new can enter the queue after the
        # drain below — every admitted batch really does get folded.
        self._stopped = True
        self._server.close()
        await self._server.wait_closed()
        if drain and self._queue is not None:
            await self._queue.join()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
        if self._done is not None:
            self._done.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` completes (remote shutdown included)."""
        if self._done is None:
            raise ConfigurationError("service not started")
        await self._done.wait()

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        verdict: str,
        guard: str,
        reason: str,
        op: str,
        batch: int,
        epoch: Optional[int] = None,
        latency_us: float = 0.0,
        repaired_fields: int = 0,
        delta: Tuple[str, ...] = (),
        channel: Optional[str] = None,
    ) -> IngestEvent:
        event = IngestEvent(
            seq=self._seq,
            verdict=verdict,
            guard=guard,
            reason=reason,
            op=op,
            batch=batch,
            epoch=epoch,
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            latency_us=latency_us,
            repaired_fields=repaired_fields,
            delta=delta,
            channel=channel,
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(event)
        return event

    # ------------------------------------------------------------------
    # Fold side (single consumer)
    # ------------------------------------------------------------------
    def _make_fold(
        self, outcome: ChainOutcome
    ) -> Callable[[AggregationServer], None]:
        """Build the whole-batch fold for one admitted outcome.

        The returned callable runs under the ``IngestHandle`` lock (via
        :meth:`~repro.aggregation.IngestHandle.submit_many`), so it
        calls the server directly rather than back through the handle.
        """
        req = outcome.request
        if req["op"] == "submit":
            if is_columnar(req):
                return _columnar_submit_fold(req)

            def fold(server: AggregationServer) -> None:
                # List→array conversion happens here, on the executor
                # thread, so a large JSONL batch never stalls the loop.
                server.submit_array(
                    req["epoch"],
                    np.asarray(req["values"], dtype=float),
                    req["claimed_loss"],
                    device_ids=req["device_ids"],
                )

            return fold

        def fold_counts(server: AggregationServer) -> None:
            server.submit_counts(
                req["epoch"],
                np.asarray(req["counts"], dtype=np.int64),
                req["n_reports"],
                req["claimed_loss"],
            )

        return fold_counts

    async def _drain(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        while True:
            items = [await self._queue.get()]
            # Coalesce everything already admitted behind this batch:
            # the whole burst folds with one lock acquisition and one
            # executor hop, bounded by queue_capacity.  Each batch still
            # folds atomically and in admission order inside.
            while True:
                try:
                    items.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            folds = [self._make_fold(outcome) for outcome, _ in items]
            try:
                # Folds run on the default executor so a large burst
                # never stalls the reader side of the loop; the
                # IngestHandle lock keeps the burst atomic with respect
                # to snapshots served from the loop thread.
                errors = await loop.run_in_executor(
                    None, self._handle.submit_many, folds
                )
            except Exception as exc:  # pragma: no cover - defensive
                errors = [exc] * len(items)
            for (outcome, channel), error in zip(items, errors):
                if error is not None:  # service must survive a bad fold
                    self._emit(
                        verdict="error",
                        guard="internal",
                        reason=(
                            f"fold failed: {type(error).__name__}: {error}"
                        ),
                        op=outcome.request.get("op", "unknown"),
                        batch=_batch_size(outcome.request),
                        epoch=outcome.request.get("epoch"),
                        channel=channel,
                    )
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        channel = peer_label(writer.get_extra_info("peername"))
        wire = "jsonl"  # every connection starts JSONL; hello may switch
        try:
            while True:
                if wire == "jsonl":
                    try:
                        raw = await reader.readline()
                    except (ValueError, asyncio.LimitOverrunError):
                        # Oversized line: the stream cannot be resynced
                        # reliably, so answer once and drop the connection.
                        reason = "request line exceeds the stream limit"
                        self._emit(
                            verdict="blocked",
                            guard="wire",
                            reason=reason,
                            op="unknown",
                            batch=0,
                            channel=channel,
                        )
                        writer.write(
                            encode_cached("blocked", guard="wire", reason=reason)
                        )
                        await writer.drain()
                        break
                    if not raw:
                        break  # peer closed
                    if not raw.strip():
                        continue  # blank keep-alive line
                    reply, keep_open, wire = await self._handle_line(
                        raw, channel, wire
                    )
                else:
                    reply, keep_open, wire = await self._handle_frame(
                        reader, channel, wire
                    )
                    if reply is None:
                        break  # clean close or mid-frame disconnect
                writer.write(reply)
                await writer.drain()
                if not keep_open:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-reply; its events are already emitted
        finally:
            # No awaits here: a hard-killed service can reach this with
            # the loop already closed (or via GeneratorExit at GC), and
            # an await would turn teardown into a second failure.
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _handle_frame(
        self, reader: asyncio.StreamReader, channel: str, wire: str
    ) -> Tuple[Optional[bytes], bool, str]:
        """Read + decide one binary frame; (reply, keep_open, wire).

        ``reply=None`` means the connection ended without a frame to
        answer — a clean close between frames, or a mid-frame disconnect
        (which is emitted as a wire block and **never** partially folds:
        nothing reaches the guards until the whole payload is in).  A
        malformed-but-complete frame answers ``blocked`` and keeps the
        connection: the length prefix already resynced the stream.
        """
        try:
            prefix = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                self._emit(
                    verdict="blocked",
                    guard="wire",
                    reason="connection closed mid-frame (length prefix)",
                    op="unknown",
                    batch=0,
                    channel=channel,
                )
            return None, False, wire
        (length,) = struct.unpack("<I", prefix)
        if length > MAX_FRAME_BYTES:
            # Refuse to even read the payload — the fence exists so a
            # hostile prefix cannot balloon the reader — and drop the
            # connection, since skipping the unread payload would mean
            # consuming exactly the bytes we refused.
            reason = f"frame payload of {length} bytes exceeds {MAX_FRAME_BYTES}"
            self._emit(
                verdict="blocked",
                guard="wire",
                reason=reason,
                op="unknown",
                batch=0,
                channel=channel,
            )
            return (
                encode_cached("blocked", guard="wire", reason=reason),
                False,
                wire,
            )
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            self._emit(
                verdict="blocked",
                guard="wire",
                reason="connection closed mid-frame",
                op="unknown",
                batch=0,
                channel=channel,
            )
            return None, False, wire
        t0 = time.perf_counter()
        try:
            request = decode_binary_frame(payload)
        except WireError as exc:
            self._emit(
                verdict="blocked",
                guard="wire",
                reason=str(exc),
                op="unknown",
                batch=0,
                latency_us=(time.perf_counter() - t0) * 1e6,
                channel=channel,
            )
            return (
                encode_cached("blocked", guard="wire", reason=str(exc)),
                True,
                wire,
            )
        if is_columnar(request):
            # The hot path: columnar admission, no per-report objects.
            reply = self._decide_submission(
                request, request["op"], channel, t0, columnar=True
            )
            return reply, True, wire
        # OP_JSON escape frame: the ordinary op dispatch, same wire.
        return await self._dispatch(request, channel, t0, wire)

    async def _handle_line(
        self, raw: bytes, channel: str, wire: str
    ) -> Tuple[bytes, bool, str]:
        """Decide one JSONL request line; (reply, keep_open, wire)."""
        t0 = time.perf_counter()
        try:
            request = decode_line(raw)
        except WireError as exc:
            self._emit(
                verdict="blocked",
                guard="wire",
                reason=str(exc),
                op="unknown",
                batch=0,
                latency_us=(time.perf_counter() - t0) * 1e6,
                channel=channel,
            )
            return (
                encode_cached("blocked", guard="wire", reason=str(exc)),
                True,
                wire,
            )
        return await self._dispatch(request, channel, t0, wire)

    async def _dispatch(
        self, request: dict, channel: str, t0: float, wire: str
    ) -> Tuple[bytes, bool, str]:
        """Route one decoded request; returns (reply, keep_open, wire).

        The submission path is await-free from guard check through queue
        put and state commit, so admission decisions never interleave
        across connections mid-decision.
        """

        def _us() -> float:
            return (time.perf_counter() - t0) * 1e6

        op = request["op"]
        if op == "ping":
            self._emit(
                verdict="admitted", guard="wire", reason="", op="ping",
                batch=0, latency_us=_us(), channel=channel,
            )
            return encode_cached("ok", pong=True), True, wire
        if op == "hello":
            return self._negotiate(request, channel, _us, wire)
        if op == "snapshot":
            # On the executor like the folds: a snapshot waiting on the
            # IngestHandle lock behind a large fold must not stall the
            # event loop (and with it every other connection).
            snap = await asyncio.get_event_loop().run_in_executor(
                None, self._handle.snapshot
            )
            self._emit(
                verdict="admitted", guard="wire", reason="", op="snapshot",
                batch=0, latency_us=_us(), channel=channel,
            )
            return encode(response("ok", snapshot=snap)), True, wire
        if op == "metrics":
            self._emit(
                verdict="admitted", guard="wire", reason="", op="metrics",
                batch=0, latency_us=_us(), channel=channel,
            )
            return (
                encode(response("ok", metrics=self.counters.ingest_summary())),
                True,
                wire,
            )
        if op == "shutdown":
            if not self.config.allow_shutdown:
                self._emit(
                    verdict="blocked", guard="wire",
                    reason="shutdown disabled (allow_shutdown=False)",
                    op="shutdown", batch=0, latency_us=_us(), channel=channel,
                )
                return (
                    encode_cached(
                        "blocked",
                        guard="wire",
                        reason="shutdown disabled (allow_shutdown=False)",
                    ),
                    True,
                    wire,
                )
            self._emit(
                verdict="admitted", guard="wire", reason="", op="shutdown",
                batch=0, latency_us=_us(), channel=channel,
            )
            asyncio.ensure_future(self.stop(drain=True))
            return encode_cached("ok", stopping=True), False, wire
        if op not in KNOWN_OPS:
            reason = f"unknown op {op!r}"
            self._emit(
                verdict="blocked", guard="wire", reason=reason,
                op="unknown", batch=0, latency_us=_us(), channel=channel,
            )
            return (
                encode_cached("blocked", guard="wire", reason=reason),
                True,
                wire,
            )
        reply = self._decide_submission(request, op, channel, t0, columnar=False)
        return reply, True, wire

    def _negotiate(
        self, request: dict, channel: str, _us: Callable[[], float], wire: str
    ) -> Tuple[bytes, bool, str]:
        """Handle the ``hello`` op: per-connection wire selection."""
        requested = request.get("wire", "jsonl")
        version = request.get("version", BINARY_WIRE_VERSION)
        if requested == "binary" and version == BINARY_WIRE_VERSION:
            self._emit(
                verdict="admitted", guard="wire", reason="", op="hello",
                batch=0, latency_us=_us(), channel=channel,
            )
            return (
                encode_cached("ok", wire="binary", version=BINARY_WIRE_VERSION),
                True,
                "binary",
            )
        if requested == "jsonl":
            self._emit(
                verdict="admitted", guard="wire", reason="", op="hello",
                batch=0, latency_us=_us(), channel=channel,
            )
            return encode_cached("ok", wire="jsonl", version=1), True, "jsonl"
        reason = (
            f"unsupported wire negotiation {requested!r} v{version!r} "
            f"(serves jsonl v1, binary v{BINARY_WIRE_VERSION})"
        )
        self._emit(
            verdict="blocked", guard="wire", reason=reason,
            op="hello", batch=0, latency_us=_us(), channel=channel,
        )
        # The connection stays on its current wire — a failed
        # negotiation must not leave the two ends disagreeing.
        return encode_cached("blocked", guard="wire", reason=reason), True, wire

    def _decide_submission(
        self, request: dict, op: str, channel: str, t0: float, columnar: bool
    ) -> bytes:
        """Guard chain, then the bounded queue — shared by both wires.

        ``columnar=True`` routes through the vectorized ``check_array``
        guard path; verdicts, deltas, and commit effects are equivalent
        to the scalar path by the guards' contract (property-tested).
        """

        def _us() -> float:
            return (time.perf_counter() - t0) * 1e6

        if self._stopped:
            # stop() has begun: the queue is draining toward join() and
            # nothing may be enqueued behind it.  Terminal, not "busy" —
            # this endpoint is going away, retrying here is pointless.
            reason = "service stopping; batch not admitted"
            self._emit(
                verdict="blocked",
                guard="service",
                reason=reason,
                op=op,
                batch=_batch_size(request),
                latency_us=_us(),
                channel=channel,
            )
            return encode_cached("blocked", guard="service", reason=reason)
        outcome = (
            self.chain.check_array(request)
            if columnar
            else self.chain.check(request)
        )
        n = _batch_size(outcome.request if outcome.admitted else request)
        epoch = outcome.request.get("epoch") if outcome.admitted else None
        if not outcome.admitted:
            self._emit(
                verdict="blocked",
                guard=outcome.guard,
                reason=outcome.reason,
                op=op,
                batch=_batch_size(request),
                latency_us=_us(),
                channel=channel,
            )
            return encode_cached(
                "blocked", guard=outcome.guard, reason=outcome.reason
            )
        assert self._queue is not None
        try:
            self._queue.put_nowait((outcome, channel))
        except asyncio.QueueFull:
            event = self._emit(
                verdict="busy",
                guard="queue",
                reason=f"aggregation queue full ({self.config.queue_capacity})",
                op=op,
                batch=n,
                epoch=epoch,
                latency_us=_us(),
                channel=channel,
            )
            return encode_cached(
                "busy",
                queue_depth=event.queue_depth,
                reason="aggregation queue full; retry",
            )
        # The batch is queued — now (and only now) apply the guards'
        # state: rate counts and budget spend charge exactly what was
        # accepted, and a busy refusal above charged nothing.
        outcome.commit()
        event = self._emit(
            verdict=outcome.verdict,  # "admitted" or "repaired"
            guard=outcome.guard,
            reason=outcome.reason,
            op=op,
            batch=n,
            epoch=epoch,
            latency_us=_us(),
            repaired_fields=len(outcome.delta),
            delta=outcome.delta,
            channel=channel,
        )
        reply = response(
            outcome.verdict,
            seq=event.seq,
            queue_depth=event.queue_depth,
            n_reports=n,
        )
        if outcome.delta:
            reply["delta"] = list(outcome.delta)
        if outcome.warnings:
            reply["warnings"] = list(outcome.warnings)
        return encode(reply)


def _columnar_submit_fold(req: dict) -> Callable[[AggregationServer], None]:
    """Whole-batch fold for a binary columnar submit.

    The f8 values column is the read-only ``np.frombuffer`` view over
    the received frame — it goes into ``submit_array(donate=True)``
    without a copy (streaming folds consume it immediately; retain mode
    copies because it outlives the frame).  The id list is the schema
    guard's one-time decode; it rides the server's own per-report
    disclosure loop, so the composition bound accumulates in exactly
    the scalar path's order — bit-identical snapshots on either wire.
    """

    def fold(server: AggregationServer) -> None:
        server.submit_array(
            req["epoch"],
            req["values"],
            req["claimed_loss"],
            device_ids=req["device_ids"],
            donate=True,
        )

    return fold


def _batch_size(request: dict) -> int:
    values = request.get("values")
    if isinstance(values, list):
        return len(values)
    if isinstance(values, np.ndarray):
        return int(values.size)
    n = request.get("n_reports")
    return n if isinstance(n, int) and not isinstance(n, bool) else 0


# ---------------------------------------------------------------------------
# Thread-hosted serving (blocking callers: tests, benchmarks, loadgen)
# ---------------------------------------------------------------------------
class ServiceHandle:
    """A running service on a background thread.

    ``address`` is the bound ``(host, port)``; :meth:`stop` shuts the
    service down (draining admitted batches) and joins the thread.
    Context-manager use guarantees the port is released on exit.
    """

    def __init__(
        self,
        service: IngestionService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        address: Tuple[str, int],
    ):
        self.service = service
        self._loop = loop
        self._thread = thread
        self.address = address

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(drain=True), self._loop
        )
        try:
            future.result(timeout=timeout)
            self._grace_tick(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def _grace_tick(self, timeout: float) -> None:
        # One extra loop turn so transport connection_lost callbacks run
        # before the loop closes (quiet teardown, not correctness).
        try:
            asyncio.run_coroutine_threadsafe(
                asyncio.sleep(0.01), self._loop
            ).result(timeout=timeout)
        except Exception:
            pass

    def kill(self, timeout: float = 10.0) -> None:
        """Hard stop: abandon the queue (whole batches), close the port.

        The crash-shaped shutdown used by the kill-the-server tests: no
        drain, no goodbye to peers.  Batches already folded stay folded;
        queued-but-unfolded batches are dropped *whole* — never split.
        """
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(drain=False), self._loop
        )
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_thread(
    aggregation: AggregationServer,
    config: Optional[ServiceConfig] = None,
    chain: Optional[GuardChain] = None,
    extra_sinks: Iterable[EventSink] = (),
    start_timeout: float = 10.0,
) -> ServiceHandle:
    """Start an :class:`IngestionService` on a daemon thread; block until
    the socket is bound; return its :class:`ServiceHandle`."""
    service = IngestionService(
        aggregation, config=config, chain=chain, extra_sinks=extra_sinks
    )
    loop = asyncio.new_event_loop()
    started: "threading.Event" = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(service.start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-ingest", daemon=True)
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise ReproError("ingestion service failed to start in time")
    if failure:
        raise failure[0]
    assert service.address is not None
    return ServiceHandle(service, loop, thread, service.address)
