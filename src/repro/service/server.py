"""The asyncio JSONL-over-socket ingestion service.

One :class:`IngestionService` fronts one
:class:`~repro.aggregation.AggregationServer`.  The data path is:

1. **Read** one ``\\n``-terminated line per request
   (:func:`~repro.service.protocol.decode_line` — strict at the wire).
2. **Guard** submission requests through the pre-admission
   :class:`~repro.service.guards.GuardChain`; the outcome is always
   *admitted*, *repaired with a recorded delta*, or *blocked with a
   reason*.
3. **Queue** admitted batches into a bounded queue.  A full queue is the
   backpressure signal: the request is answered ``busy`` immediately
   (explicit, retryable) instead of being buffered without bound.
   Stateful guard effects (rate counts, budget spend) are committed via
   :meth:`~repro.service.guards.ChainOutcome.commit` only *after* the
   batch lands in the queue — a ``busy`` refusal charges nothing, so
   retrying the same batch is admissible.
4. **Fold** — a single drain task pops whole batches and folds each one
   into the aggregation server through its thread-safe
   :class:`~repro.aggregation.IngestHandle` with **one**
   ``submit_array``/``submit_counts`` call.  Batches fold atomically and
   in admission order, which is what makes a socket-fed epoch
   bit-identical to the same batches submitted in-process — and why a
   killed service can never leave a *partially* ingested batch behind.

Every request produces exactly one :class:`~repro.runtime.IngestEvent`
through the same sink machinery as release events (the service's own
:class:`~repro.runtime.CounterSink` plus any extra sinks, e.g. a
:class:`~repro.runtime.JsonlSink` audit trail).

The service is deliberately **admission-acknowledging**: a ``submit``
response means the batch passed the guards and is queued, not that the
fold already ran.  The guards pre-validate everything the fold would
reject, so a fold failure is an *internal* error — counted, traced with
``guard="internal"``, and required to be zero by the CI smoke job.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..aggregation import AggregationServer
from ..errors import ConfigurationError, ReproError
from ..runtime import CounterSink, IngestEvent
from ..runtime.sinks import EventSink
from .guards import ChainOutcome, GuardChain, default_chain
from .protocol import (
    KNOWN_OPS,
    WireError,
    decode_line,
    encode,
    peer_label,
    response,
)

__all__ = ["ServiceConfig", "IngestionService", "ServiceHandle", "serve_in_thread"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Ingestion-service knobs (wire, guards, backpressure)."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 lets the OS pick; the bound port is on ``service.address``."""

    queue_capacity: int = 64
    """Pending-batch bound: the explicit backpressure threshold.  When
    the drain side falls this many whole batches behind, submissions
    get a ``busy`` response instead of unbounded buffering."""

    max_line_bytes: int = 8 * 1024 * 1024
    """Per-connection stream-reader limit (also the practical request
    cap; the wire decoder's own 64 MiB bound is a second fence)."""

    # Guard-chain parameters (see :func:`~repro.service.guards.default_chain`).
    max_batch: int = 65536
    coerce: bool = True
    epoch_horizon: int = 1_000_000
    max_claimed_loss: float = 16.0
    device_budget: Optional[float] = None
    per_epoch_limit: int = 1
    max_devices_tracked: int = 1_048_576

    allow_shutdown: bool = False
    """Honor the ``shutdown`` op.  Off by default — this endpoint meets
    untrusted peers, and remote shutdown is a denial-of-service door;
    enable it only for tests and supervised smoke runs."""

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.max_line_bytes < 1024:
            raise ConfigurationError("max_line_bytes must be >= 1024")


class IngestionService:
    """Asyncio ingestion front end over one aggregation server.

    Use :meth:`start`/:meth:`stop` from an event loop, or
    :func:`serve_in_thread` for a blocking caller (tests, benchmarks,
    the CLI client's self-serve mode).
    """

    def __init__(
        self,
        aggregation: AggregationServer,
        config: Optional[ServiceConfig] = None,
        chain: Optional[GuardChain] = None,
        extra_sinks: Iterable[EventSink] = (),
    ):
        self.config = config or ServiceConfig()
        self._handle = aggregation.ingest_handle()
        self.chain = chain if chain is not None else default_chain(
            max_batch=self.config.max_batch,
            coerce=self.config.coerce,
            epoch_horizon=self.config.epoch_horizon,
            max_claimed_loss=self.config.max_claimed_loss,
            device_budget=self.config.device_budget,
            per_epoch_limit=self.config.per_epoch_limit,
            max_devices_tracked=self.config.max_devices_tracked,
        )
        #: Admission counters — the ``metrics`` endpoint's payload.
        self.counters = CounterSink()
        self._sinks: List[EventSink] = [self.counters, *extra_sinks]
        self._seq = 0
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._done: Optional[asyncio.Event] = None
        self._stopped = False
        #: ``(host, port)`` actually bound, set by :meth:`start`.
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the socket, start the drain task, return ``(host, port)``."""
        if self._server is not None:
            raise ConfigurationError("service already started")
        self._queue = asyncio.Queue(maxsize=self.config.queue_capacity)
        self._done = asyncio.Event()
        self._drain_task = asyncio.ensure_future(self._drain())
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain queued batches, cancel tasks.

        ``drain=True`` folds everything already admitted before
        returning — an admitted batch is a promise.  ``drain=False``
        abandons the queue (whole batches only; a batch is never split).
        """
        if self._server is None or self._stopped:
            return
        # Setting the flag first quiesces *established* connections too:
        # _handle_line answers "blocked: service stopping" to further
        # submissions, so nothing new can enter the queue after the
        # drain below — every admitted batch really does get folded.
        self._stopped = True
        self._server.close()
        await self._server.wait_closed()
        if drain and self._queue is not None:
            await self._queue.join()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
        if self._done is not None:
            self._done.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` completes (remote shutdown included)."""
        if self._done is None:
            raise ConfigurationError("service not started")
        await self._done.wait()

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        verdict: str,
        guard: str,
        reason: str,
        op: str,
        batch: int,
        epoch: Optional[int] = None,
        latency_us: float = 0.0,
        repaired_fields: int = 0,
        delta: Tuple[str, ...] = (),
        channel: Optional[str] = None,
    ) -> IngestEvent:
        event = IngestEvent(
            seq=self._seq,
            verdict=verdict,
            guard=guard,
            reason=reason,
            op=op,
            batch=batch,
            epoch=epoch,
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            latency_us=latency_us,
            repaired_fields=repaired_fields,
            delta=delta,
            channel=channel,
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(event)
        return event

    # ------------------------------------------------------------------
    # Fold side (single consumer)
    # ------------------------------------------------------------------
    def _fold(self, outcome: ChainOutcome) -> None:
        """Fold one admitted batch — one atomic handle call, whole batch."""
        req = outcome.request
        if req["op"] == "submit":
            self._handle.submit_array(
                req["epoch"],
                np.asarray(req["values"], dtype=float),
                req["claimed_loss"],
                device_ids=req["device_ids"],
            )
        else:
            self._handle.submit_counts(
                req["epoch"],
                np.asarray(req["counts"], dtype=np.int64),
                req["n_reports"],
                req["claimed_loss"],
            )

    async def _drain(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        while True:
            outcome, channel = await self._queue.get()
            try:
                # Folds run on the default executor so a large batch
                # never stalls the reader side of the loop; the
                # IngestHandle lock keeps each fold atomic with respect
                # to snapshots served from the loop thread.
                await loop.run_in_executor(None, self._fold, outcome)
            except Exception as exc:  # service must survive a bad fold
                self._emit(
                    verdict="error",
                    guard="internal",
                    reason=f"fold failed: {type(exc).__name__}: {exc}",
                    op=outcome.request.get("op", "unknown"),
                    batch=_batch_size(outcome.request),
                    epoch=outcome.request.get("epoch"),
                    channel=channel,
                )
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        channel = peer_label(writer.get_extra_info("peername"))
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: the stream cannot be resynced
                    # reliably, so answer once and drop the connection.
                    self._emit(
                        verdict="blocked",
                        guard="wire",
                        reason="request line exceeds the stream limit",
                        op="unknown",
                        batch=0,
                        channel=channel,
                    )
                    writer.write(
                        encode(
                            response(
                                "blocked",
                                guard="wire",
                                reason="request line exceeds the stream limit",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not raw:
                    break  # peer closed
                if not raw.strip():
                    continue  # blank keep-alive line
                reply, keep_open = await self._handle_line(raw, channel)
                writer.write(encode(reply))
                await writer.drain()
                if not keep_open:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-reply; its events are already emitted
        finally:
            # No awaits here: a hard-killed service can reach this with
            # the loop already closed (or via GeneratorExit at GC), and
            # an await would turn teardown into a second failure.
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _handle_line(self, raw: bytes, channel: str) -> Tuple[dict, bool]:
        """Decide one request line; returns (response, keep_connection).

        The submission path is await-free from guard check through queue
        put and state commit, so admission decisions never interleave
        across connections mid-decision.
        """
        t0 = time.perf_counter()

        def _us() -> float:
            return (time.perf_counter() - t0) * 1e6

        try:
            request = decode_line(raw)
        except WireError as exc:
            self._emit(
                verdict="blocked",
                guard="wire",
                reason=str(exc),
                op="unknown",
                batch=0,
                latency_us=_us(),
                channel=channel,
            )
            return response("blocked", guard="wire", reason=str(exc)), True

        op = request["op"]
        if op == "ping":
            self._emit(
                verdict="admitted", guard="wire", reason="", op="ping",
                batch=0, latency_us=_us(), channel=channel,
            )
            return response("ok", pong=True), True
        if op == "snapshot":
            # On the executor like the folds: a snapshot waiting on the
            # IngestHandle lock behind a large fold must not stall the
            # event loop (and with it every other connection).
            snap = await asyncio.get_event_loop().run_in_executor(
                None, self._handle.snapshot
            )
            self._emit(
                verdict="admitted", guard="wire", reason="", op="snapshot",
                batch=0, latency_us=_us(), channel=channel,
            )
            return response("ok", snapshot=snap), True
        if op == "metrics":
            self._emit(
                verdict="admitted", guard="wire", reason="", op="metrics",
                batch=0, latency_us=_us(), channel=channel,
            )
            return response("ok", metrics=self.counters.ingest_summary()), True
        if op == "shutdown":
            if not self.config.allow_shutdown:
                self._emit(
                    verdict="blocked", guard="wire",
                    reason="shutdown disabled (allow_shutdown=False)",
                    op="shutdown", batch=0, latency_us=_us(), channel=channel,
                )
                return (
                    response(
                        "blocked",
                        guard="wire",
                        reason="shutdown disabled (allow_shutdown=False)",
                    ),
                    True,
                )
            self._emit(
                verdict="admitted", guard="wire", reason="", op="shutdown",
                batch=0, latency_us=_us(), channel=channel,
            )
            asyncio.ensure_future(self.stop(drain=True))
            return response("ok", stopping=True), False
        if op not in KNOWN_OPS:
            reason = f"unknown op {op!r}"
            self._emit(
                verdict="blocked", guard="wire", reason=reason,
                op="unknown", batch=0, latency_us=_us(), channel=channel,
            )
            return response("blocked", guard="wire", reason=reason), True

        # Submission path: guard chain, then the bounded queue.
        if self._stopped:
            # stop() has begun: the queue is draining toward join() and
            # nothing may be enqueued behind it.  Terminal, not "busy" —
            # this endpoint is going away, retrying here is pointless.
            reason = "service stopping; batch not admitted"
            self._emit(
                verdict="blocked",
                guard="service",
                reason=reason,
                op=op,
                batch=_batch_size(request),
                latency_us=_us(),
                channel=channel,
            )
            return response("blocked", guard="service", reason=reason), True
        outcome = self.chain.check(request)
        n = _batch_size(outcome.request if outcome.admitted else request)
        epoch = outcome.request.get("epoch") if outcome.admitted else None
        if not outcome.admitted:
            self._emit(
                verdict="blocked",
                guard=outcome.guard,
                reason=outcome.reason,
                op=op,
                batch=_batch_size(request),
                latency_us=_us(),
                channel=channel,
            )
            return (
                response("blocked", guard=outcome.guard, reason=outcome.reason),
                True,
            )
        assert self._queue is not None
        try:
            self._queue.put_nowait((outcome, channel))
        except asyncio.QueueFull:
            event = self._emit(
                verdict="busy",
                guard="queue",
                reason=f"aggregation queue full ({self.config.queue_capacity})",
                op=op,
                batch=n,
                epoch=epoch,
                latency_us=_us(),
                channel=channel,
            )
            return (
                response(
                    "busy",
                    queue_depth=event.queue_depth,
                    reason="aggregation queue full; retry",
                ),
                True,
            )
        # The batch is queued — now (and only now) apply the guards'
        # state: rate counts and budget spend charge exactly what was
        # accepted, and a busy refusal above charged nothing.
        outcome.commit()
        event = self._emit(
            verdict=outcome.verdict,  # "admitted" or "repaired"
            guard=outcome.guard,
            reason=outcome.reason,
            op=op,
            batch=n,
            epoch=epoch,
            latency_us=_us(),
            repaired_fields=len(outcome.delta),
            delta=outcome.delta,
            channel=channel,
        )
        reply = response(
            outcome.verdict,
            seq=event.seq,
            queue_depth=event.queue_depth,
            n_reports=n,
        )
        if outcome.delta:
            reply["delta"] = list(outcome.delta)
        if outcome.warnings:
            reply["warnings"] = list(outcome.warnings)
        return reply, True


def _batch_size(request: dict) -> int:
    values = request.get("values")
    if isinstance(values, list):
        return len(values)
    n = request.get("n_reports")
    return n if isinstance(n, int) and not isinstance(n, bool) else 0


# ---------------------------------------------------------------------------
# Thread-hosted serving (blocking callers: tests, benchmarks, loadgen)
# ---------------------------------------------------------------------------
class ServiceHandle:
    """A running service on a background thread.

    ``address`` is the bound ``(host, port)``; :meth:`stop` shuts the
    service down (draining admitted batches) and joins the thread.
    Context-manager use guarantees the port is released on exit.
    """

    def __init__(
        self,
        service: IngestionService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        address: Tuple[str, int],
    ):
        self.service = service
        self._loop = loop
        self._thread = thread
        self.address = address

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(drain=True), self._loop
        )
        try:
            future.result(timeout=timeout)
            self._grace_tick(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def _grace_tick(self, timeout: float) -> None:
        # One extra loop turn so transport connection_lost callbacks run
        # before the loop closes (quiet teardown, not correctness).
        try:
            asyncio.run_coroutine_threadsafe(
                asyncio.sleep(0.01), self._loop
            ).result(timeout=timeout)
        except Exception:
            pass

    def kill(self, timeout: float = 10.0) -> None:
        """Hard stop: abandon the queue (whole batches), close the port.

        The crash-shaped shutdown used by the kill-the-server tests: no
        drain, no goodbye to peers.  Batches already folded stay folded;
        queued-but-unfolded batches are dropped *whole* — never split.
        """
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(drain=False), self._loop
        )
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_thread(
    aggregation: AggregationServer,
    config: Optional[ServiceConfig] = None,
    chain: Optional[GuardChain] = None,
    extra_sinks: Iterable[EventSink] = (),
    start_timeout: float = 10.0,
) -> ServiceHandle:
    """Start an :class:`IngestionService` on a daemon thread; block until
    the socket is bound; return its :class:`ServiceHandle`."""
    service = IngestionService(
        aggregation, config=config, chain=chain, extra_sinks=extra_sinks
    )
    loop = asyncio.new_event_loop()
    started: "threading.Event" = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(service.start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-ingest", daemon=True)
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise ReproError("ingestion service failed to start in time")
    if failure:
        raise failure[0]
    assert service.address is not None
    return ServiceHandle(service, loop, thread, service.address)
