"""Blocking ingestion client and the load generator built on it.

:class:`IngestClient` is a deliberately simple synchronous client — one
TCP connection, one request/response pair per call — used by
devices-in-simulation, the test suite, and ``python -m repro loadgen``.
It speaks either negotiated wire: JSONL (the default) or, after
``wire="binary"`` sends the ``hello``, the length-prefixed binary
columnar frames of wire v2 (responses stay JSONL on both).  Every byte
shipped or received is tallied on ``bytes_sent``/``bytes_received`` so
callers can report the bits-on-the-wire axis next to throughput.
:func:`run_load` drives a configured burst of report batches through a
client, honoring the service's ``busy`` backpressure (bounded retries
with a short sleep), and reports sustained throughput, client-observed
latency percentiles, and wire bytes per admitted report in a
:class:`LoadReport`.

The generated batches are deterministic in ``seed`` (values come from
the audited generator; device ids and epochs are functions of the batch
index), so a load run is replayable: the same seed produces the same
wire bytes, and — because guards are deterministic too — the same
admission trace.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ReproError
from ..rng import audited_generator
from .protocol import (
    BINARY_WIRE_VERSION,
    WireError,
    encode,
    encode_binary_counts,
    encode_binary_json,
    encode_binary_submit,
)

__all__ = ["IngestClient", "LoadReport", "run_load"]

#: Wires a client can speak; ``jsonl`` needs no negotiation.
WIRES = ("jsonl", "binary")


class IngestClient:
    """One blocking TCP connection to an ingestion service.

    ``wire="binary"`` performs the ``hello`` negotiation during
    construction and then ships submissions as binary columnar frames
    (read-only ops ride ``OP_JSON`` escape frames); the default
    ``wire="jsonl"`` sends byte-for-byte what this client always sent.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 30.0, wire: str = "jsonl"
    ):
        if wire not in WIRES:
            raise ReproError(f"unknown wire {wire!r}; expected one of {WIRES}")
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        #: Request bytes shipped / response bytes read on this connection.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.wire = "jsonl"
        if wire == "binary":
            reply = self.request(
                {"op": "hello", "wire": "binary", "version": BINARY_WIRE_VERSION}
            )
            if reply.get("status") != "ok" or reply.get("wire") != "binary":
                raise WireError(f"binary wire negotiation failed: {reply!r}")
            self.wire = "binary"

    # ------------------------------------------------------------------
    def exchange(self, data: bytes) -> Dict[str, Any]:
        """Ship pre-encoded request bytes; block for the JSONL response.

        The resend primitive: busy-retry loops encode a batch once and
        replay the same bytes, on either wire.
        """
        self.send_raw(data)
        return self.read_reply()

    def read_reply(self) -> Dict[str, Any]:
        """Block for the next JSONL response on this connection.

        Responses arrive strictly in request order (one connection, one
        server read loop), so a pipelining caller that ships *k* requests
        back-to-back reads exactly *k* replies in the same order.
        """
        line = self._reader.readline()
        if not line:
            raise WireError("connection closed before a response arrived")
        self.bytes_received += len(line)
        reply = json.loads(line.decode("utf-8"))
        if not isinstance(reply, dict):
            raise WireError(f"response must be a JSON object, got {reply!r}")
        return reply

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; block for its response object."""
        if self.wire == "binary":
            return self.exchange(encode_binary_json(obj))
        return self.exchange(encode(obj))

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (malformed lines/frames — test scaffolding)."""
        self._sock.sendall(data)
        self.bytes_sent += len(data)

    # ------------------------------------------------------------------
    def encode_submit(
        self,
        epoch: int,
        device_ids: Sequence[str],
        values: Union[Sequence[float], np.ndarray],
        claimed_loss: float,
    ) -> bytes:
        """Encode one ``submit`` for this connection's negotiated wire."""
        if self.wire == "binary":
            return encode_binary_submit(epoch, device_ids, values, claimed_loss)
        return encode(
            {
                "op": "submit",
                "epoch": epoch,
                "device_ids": list(device_ids),
                "values": [float(v) for v in values],
                "claimed_loss": float(claimed_loss),
            }
        )

    def encode_submit_counts(
        self,
        epoch: int,
        counts: Union[Sequence[int], np.ndarray],
        n_reports: int,
        claimed_loss: float,
    ) -> bytes:
        """Encode one ``submit_counts`` for the negotiated wire."""
        if self.wire == "binary":
            return encode_binary_counts(epoch, counts, n_reports, claimed_loss)
        return encode(
            {
                "op": "submit_counts",
                "epoch": epoch,
                "counts": [int(c) for c in counts],
                "n_reports": int(n_reports),
                "claimed_loss": float(claimed_loss),
            }
        )

    def submit(
        self,
        epoch: int,
        device_ids: Sequence[str],
        values: Union[Sequence[float], np.ndarray],
        claimed_loss: float,
    ) -> Dict[str, Any]:
        return self.exchange(
            self.encode_submit(epoch, device_ids, values, claimed_loss)
        )

    def submit_counts(
        self,
        epoch: int,
        counts: Union[Sequence[int], np.ndarray],
        n_reports: int,
        claimed_loss: float,
    ) -> Dict[str, Any]:
        return self.exchange(
            self.encode_submit_counts(epoch, counts, n_reports, claimed_loss)
        )

    def snapshot(self) -> Dict[str, Any]:
        return self.request({"op": "snapshot"})

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "IngestClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """One load run's outcome — throughput, latency, admission tallies."""

    n_requests: int
    reports_admitted: int
    n_repaired: int
    n_blocked: int
    n_busy_retries: int
    elapsed_s: float
    reports_per_s: float
    latency_p50_us: float
    """Client-observed send→reply p50 (includes the wire; with a
    pipeline window above 1 it also includes time spent queued behind
    earlier in-flight requests)."""
    latency_p99_us: float
    server_metrics: Dict[str, Any]
    """The service's own admission counters, fetched after the burst."""

    wire: str = "jsonl"
    """Which wire the burst used (``jsonl`` or ``binary``)."""
    wire_bytes_sent: int = 0
    """Submission-path request bytes shipped during the timed burst."""
    wire_bytes_per_report: float = 0.0
    """Wire bytes per *admitted* report — the bits-on-the-wire axis."""

    def describe(self) -> str:
        ing = self.server_metrics
        return (
            f"{self.reports_admitted} reports admitted in {self.elapsed_s:.3f}s "
            f"= {self.reports_per_s:,.0f} reports/s over {self.n_requests} "
            f"requests ({self.n_repaired} repaired, {self.n_blocked} blocked, "
            f"{self.n_busy_retries} busy retries)\n"
            f"wire ({self.wire})  : {self.wire_bytes_sent:,} request bytes, "
            f"{self.wire_bytes_per_report:,.1f} B per admitted report\n"
            f"client round-trip : p50 {self.latency_p50_us:,.0f} us, "
            f"p99 {self.latency_p99_us:,.0f} us\n"
            f"server admission  : p50 {_fmt_us(ing.get('latency_p50_us'))}, "
            f"p99 {_fmt_us(ing.get('latency_p99_us'))}, "
            f"max queue depth {ing.get('max_queue_depth')}, "
            f"internal errors {ing.get('internal_errors')}"
        )


def _fmt_us(v: Optional[float]) -> str:
    return "n/a" if v is None else f"{v:,.0f} us"


def _percentile(sorted_us: List[float], q: float) -> float:
    if not sorted_us:
        return 0.0
    rank = max(0, min(len(sorted_us) - 1, int(round(q / 100.0 * len(sorted_us))) - 1))
    return sorted_us[rank]


def run_load(
    host: str,
    port: int,
    batches: int = 100,
    batch_size: int = 256,
    epochs: int = 4,
    claimed_loss: float = 1.0,
    value_range: Tuple[float, float] = (0.0, 50.0),
    seed: int = 1234,
    busy_retry_limit: int = 1000,
    busy_sleep_s: float = 0.002,
    wire: str = "jsonl",
    pipeline: int = 1,
) -> LoadReport:
    """Drive a deterministic burst of scalar report batches.

    Batch ``b`` targets epoch ``b % epochs`` with ``batch_size`` fresh
    device ids (``dev-<b>-<i>``), so the default 1/epoch rate limit
    never trips and every batch is admissible — blocked counts in the
    report indicate a server-side problem, not load-generator noise.
    ``busy`` responses are retried (the backpressure contract: back off
    and resend the same batch) up to ``busy_retry_limit`` times each.

    ``wire`` selects the request encoding (``jsonl`` or ``binary``); the
    report *content* is identical on both — same seed, same ids, same
    IEEE-754 doubles — so snapshots are comparable across wires down to
    the bit.

    ``pipeline`` is the request window depth: up to that many batches
    are in flight before the oldest reply is read (replies are FIFO on
    the single connection, so reads pair with sends in order).  Depth 1
    is the classic lock-step loop.  Deeper windows overlap client
    encode, wire transfer, and server admission, and let the server's
    drain coalesce queued batches into one executor hop.  Batches are
    *sent* in order on every depth; a ``busy`` refusal is resent at the
    front of the window, so with a depth above 1 a refused batch can
    fold after later in-flight ones (same-epoch fold order then differs
    from batch order).  Runs that need strict fold order should either
    use depth 1 or size the service queue so refusals never happen —
    the benchmark does the latter and asserts zero busy retries.
    """
    if batches < 1 or batch_size < 1 or epochs < 1:
        raise ReproError("batches, batch_size and epochs must all be >= 1")
    if pipeline < 1:
        raise ReproError("pipeline must be >= 1")
    lo, hi = value_range
    values = audited_generator(seed).uniform(lo, hi, size=(batches, batch_size))
    latencies_us: List[float] = []
    admitted = 0
    repaired = 0
    blocked = 0
    busy_retries = 0
    n_requests = 0
    with IngestClient(host, port, wire=wire) as client:
        # Binary clients keep id columns native (fixed-width S arrays):
        # per batch, one vectorized prefix-concat replaces batch_size
        # f-string builds.  Same logical ids either way.
        id_suffix = np.arange(batch_size).astype(
            "S%d" % len(str(batch_size - 1))
        )

        def encode_batch(b: int) -> bytes:
            if client.wire == "binary":
                ids: Any = np.char.add(
                    f"dev-{b}-".encode("ascii"), id_suffix
                )
            else:
                ids = [f"dev-{b}-{i}" for i in range(batch_size)]
            return client.encode_submit(
                b % epochs, ids, values[b], claimed_loss
            )

        bytes_before = client.bytes_sent  # negotiation excluded
        t_start = time.perf_counter()
        pending: Deque[int] = deque(range(batches))
        in_flight: Deque[Tuple[int, float]] = deque()
        # Encode once per batch; busy retries replay the same bytes.
        payloads: Dict[int, bytes] = {}
        attempts: Dict[int, int] = {}
        while pending or in_flight:
            while pending and len(in_flight) < pipeline:
                b = pending.popleft()
                payload = payloads.get(b)
                if payload is None:
                    payload = payloads[b] = encode_batch(b)
                t0 = time.perf_counter()
                client.send_raw(payload)
                in_flight.append((b, t0))
            b, t0 = in_flight.popleft()
            reply = client.read_reply()
            latencies_us.append((time.perf_counter() - t0) * 1e6)
            n_requests += 1
            status = reply.get("status")
            if status == "busy":
                busy_retries += 1
                tries = attempts.get(b, 0) + 1
                if tries > busy_retry_limit:
                    raise ReproError(
                        f"batch {b} still busy after {busy_retry_limit} retries"
                    )
                attempts[b] = tries
                if not in_flight:
                    # Nothing left draining ahead of us — back off.
                    time.sleep(busy_sleep_s)
                pending.appendleft(b)
                continue
            payloads.pop(b, None)
            attempts.pop(b, None)
            if status in ("admitted", "repaired"):
                admitted += reply.get("n_reports", batch_size)
                if status == "repaired":
                    repaired += 1
            elif status == "blocked":
                blocked += 1
            else:
                raise ReproError(f"unexpected response status {status!r}")
        elapsed = time.perf_counter() - t_start
        wire_bytes = client.bytes_sent - bytes_before
        metrics_reply = client.metrics()
    latencies_us.sort()
    return LoadReport(
        n_requests=n_requests,
        reports_admitted=admitted,
        n_repaired=repaired,
        n_blocked=blocked,
        n_busy_retries=busy_retries,
        elapsed_s=elapsed,
        reports_per_s=admitted / elapsed if elapsed > 0 else 0.0,
        latency_p50_us=_percentile(latencies_us, 50.0),
        latency_p99_us=_percentile(latencies_us, 99.0),
        server_metrics=metrics_reply.get("metrics", {}),
        wire=client.wire,
        wire_bytes_sent=wire_bytes,
        wire_bytes_per_report=wire_bytes / admitted if admitted else 0.0,
    )
