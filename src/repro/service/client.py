"""Blocking ingestion client and the load generator built on it.

:class:`IngestClient` is a deliberately simple synchronous client — one
TCP connection, one JSONL request/response pair per call — used by
devices-in-simulation, the test suite, and ``python -m repro loadgen``.
:func:`run_load` drives a configured burst of report batches through a
client, honoring the service's ``busy`` backpressure (bounded retries
with a short sleep), and reports sustained throughput plus
client-observed latency percentiles in a :class:`LoadReport`.

The generated batches are deterministic in ``seed`` (values come from
the audited generator; device ids and epochs are functions of the batch
index), so a load run is replayable: the same seed produces the same
wire bytes, and — because guards are deterministic too — the same
admission trace.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..rng import audited_generator
from .protocol import WireError, encode

__all__ = ["IngestClient", "LoadReport", "run_load"]


class IngestClient:
    """One blocking JSONL-over-TCP connection to an ingestion service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; block for its response object."""
        self._sock.sendall(encode(obj))
        line = self._reader.readline()
        if not line:
            raise WireError("connection closed before a response arrived")
        reply = json.loads(line.decode("utf-8"))
        if not isinstance(reply, dict):
            raise WireError(f"response must be a JSON object, got {reply!r}")
        return reply

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (malformed/partial lines — test scaffolding)."""
        self._sock.sendall(data)

    # ------------------------------------------------------------------
    def submit(
        self,
        epoch: int,
        device_ids: Sequence[str],
        values: Sequence[float],
        claimed_loss: float,
    ) -> Dict[str, Any]:
        return self.request(
            {
                "op": "submit",
                "epoch": epoch,
                "device_ids": list(device_ids),
                "values": [float(v) for v in values],
                "claimed_loss": float(claimed_loss),
            }
        )

    def submit_counts(
        self,
        epoch: int,
        counts: Sequence[int],
        n_reports: int,
        claimed_loss: float,
    ) -> Dict[str, Any]:
        return self.request(
            {
                "op": "submit_counts",
                "epoch": epoch,
                "counts": [int(c) for c in counts],
                "n_reports": int(n_reports),
                "claimed_loss": float(claimed_loss),
            }
        )

    def snapshot(self) -> Dict[str, Any]:
        return self.request({"op": "snapshot"})

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "IngestClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """One load run's outcome — throughput, latency, admission tallies."""

    n_requests: int
    reports_admitted: int
    n_repaired: int
    n_blocked: int
    n_busy_retries: int
    elapsed_s: float
    reports_per_s: float
    latency_p50_us: float
    """Client-observed request round-trip p50 (includes the wire)."""
    latency_p99_us: float
    server_metrics: Dict[str, Any]
    """The service's own admission counters, fetched after the burst."""

    def describe(self) -> str:
        ing = self.server_metrics
        return (
            f"{self.reports_admitted} reports admitted in {self.elapsed_s:.3f}s "
            f"= {self.reports_per_s:,.0f} reports/s over {self.n_requests} "
            f"requests ({self.n_repaired} repaired, {self.n_blocked} blocked, "
            f"{self.n_busy_retries} busy retries)\n"
            f"client round-trip : p50 {self.latency_p50_us:,.0f} us, "
            f"p99 {self.latency_p99_us:,.0f} us\n"
            f"server admission  : p50 {_fmt_us(ing.get('latency_p50_us'))}, "
            f"p99 {_fmt_us(ing.get('latency_p99_us'))}, "
            f"max queue depth {ing.get('max_queue_depth')}, "
            f"internal errors {ing.get('internal_errors')}"
        )


def _fmt_us(v: Optional[float]) -> str:
    return "n/a" if v is None else f"{v:,.0f} us"


def _percentile(sorted_us: List[float], q: float) -> float:
    if not sorted_us:
        return 0.0
    rank = max(0, min(len(sorted_us) - 1, int(round(q / 100.0 * len(sorted_us))) - 1))
    return sorted_us[rank]


def run_load(
    host: str,
    port: int,
    batches: int = 100,
    batch_size: int = 256,
    epochs: int = 4,
    claimed_loss: float = 1.0,
    value_range: Tuple[float, float] = (0.0, 50.0),
    seed: int = 1234,
    busy_retry_limit: int = 1000,
    busy_sleep_s: float = 0.002,
) -> LoadReport:
    """Drive a deterministic burst of scalar report batches.

    Batch ``b`` targets epoch ``b % epochs`` with ``batch_size`` fresh
    device ids (``dev-<b>-<i>``), so the default 1/epoch rate limit
    never trips and every batch is admissible — blocked counts in the
    report indicate a server-side problem, not load-generator noise.
    ``busy`` responses are retried (the backpressure contract: back off
    and resend the same batch) up to ``busy_retry_limit`` times each.
    """
    if batches < 1 or batch_size < 1 or epochs < 1:
        raise ReproError("batches, batch_size and epochs must all be >= 1")
    lo, hi = value_range
    values = audited_generator(seed).uniform(lo, hi, size=(batches, batch_size))
    latencies_us: List[float] = []
    admitted = 0
    repaired = 0
    blocked = 0
    busy_retries = 0
    n_requests = 0
    with IngestClient(host, port) as client:
        t_start = time.perf_counter()
        for b in range(batches):
            ids = [f"dev-{b}-{i}" for i in range(batch_size)]
            batch_values = [float(v) for v in values[b]]
            epoch = b % epochs
            for attempt in range(busy_retry_limit + 1):
                t0 = time.perf_counter()
                reply = client.submit(epoch, ids, batch_values, claimed_loss)
                latencies_us.append((time.perf_counter() - t0) * 1e6)
                n_requests += 1
                status = reply.get("status")
                if status != "busy":
                    break
                busy_retries += 1
                time.sleep(busy_sleep_s)
            else:
                raise ReproError(
                    f"batch {b} still busy after {busy_retry_limit} retries"
                )
            if status in ("admitted", "repaired"):
                admitted += reply.get("n_reports", batch_size)
                if status == "repaired":
                    repaired += 1
            elif status == "blocked":
                blocked += 1
            else:
                raise ReproError(f"unexpected response status {status!r}")
        elapsed = time.perf_counter() - t_start
        metrics_reply = client.metrics()
    latencies_us.sort()
    return LoadReport(
        n_requests=n_requests,
        reports_admitted=admitted,
        n_repaired=repaired,
        n_blocked=blocked,
        n_busy_retries=busy_retries,
        elapsed_s=elapsed,
        reports_per_s=admitted / elapsed if elapsed > 0 else 0.0,
        latency_p50_us=_percentile(latencies_us, 50.0),
        latency_p99_us=_percentile(latencies_us, 99.0),
        server_metrics=metrics_reply.get("metrics", {}),
    )
