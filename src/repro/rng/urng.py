"""Uniform random-number source interfaces and adapters.

Every Laplace sampler in this library consumes *integer uniform codes*
``m in {1, ..., 2**Bu}`` — the exact alphabet the paper's URNG hardware
emits (``u = m * 2**-Bu``, Section III-A2) — rather than floats, so that
the discrete structure that causes the privacy failure is preserved
end-to-end.

Three sources implement the interface:

* :class:`TauswortheSource` — the hardware-accurate generator (DP-Box).
* :class:`NumpySource` — a PCG64-backed source for fast large-scale
  statistical experiments (identical alphabet, different stream).
* :class:`ExhaustiveSource` — enumerates *every* code exactly once; used
  by the exact-PMF tests to validate the analytic eq.-(11) counts.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Union

import numpy as np

from ..errors import ConfigurationError
from .lfsr import FibonacciLFSR, GaloisLFSR, MAXIMAL_TAPS
from .tausworthe import VectorTaus88

__all__ = [
    "UniformCodeSource",
    "TauswortheSource",
    "NumpySource",
    "ExhaustiveSource",
    "SplitStreamSource",
    "LfsrSource",
    "audited_generator",
    "shard_seed_sequences",
    "spawn_shard_sources",
]

#: Seed material accepted wherever a stream is derived: a plain integer,
#: an already-derived ``SeedSequence`` (e.g. a shard sub-seed), or
#: ``None`` for fresh OS entropy.
SeedLike = Union[None, int, np.random.SeedSequence]


def audited_generator(seed: SeedLike = None) -> np.random.Generator:
    """The audited construction point for ``numpy.random.Generator``.

    Release-path code must not call ``np.random.default_rng`` directly
    (dplint rule DPL001): scattering generator construction makes the
    randomness supply unauditable, which is exactly the failure mode the
    secure-sampling literature warns about (PAPERS.md, Holohan &
    Braghin).  Routing every construction through this one function keeps
    the supply greppable and gives a single seam where a hardware entropy
    source or CSPRNG can be swapped in.

    Float-generator randomness is only appropriate for the *ideal*
    reference arms and analysis sampling; the fixed-point release
    datapath consumes integer codes from a :class:`UniformCodeSource`.
    """
    return np.random.default_rng(seed)


class UniformCodeSource(abc.ABC):
    """Source of uniform integer codes in ``{1, ..., 2**bits}``."""

    @abc.abstractmethod
    def uniform_codes(self, n: int, bits: int) -> np.ndarray:
        """Draw ``n`` codes uniformly from ``{1, ..., 2**bits}`` (int64)."""

    @abc.abstractmethod
    def random_bits(self, n: int) -> np.ndarray:
        """Draw ``n`` fair bits (0/1 int64) — used for the noise sign."""

    def uniforms(self, n: int, bits: int) -> np.ndarray:
        """Float uniforms in (0, 1] on the ``2**-bits`` grid."""
        return self.uniform_codes(n, bits) * 2.0 ** (-bits)


class TauswortheSource(UniformCodeSource):
    """Adapter exposing :class:`VectorTaus88` through the common interface."""

    def __init__(self, seed: int = 12345, n_lanes: int = 256):
        self._gen = VectorTaus88(seed=seed, n_lanes=n_lanes)

    def uniform_codes(self, n: int, bits: int) -> np.ndarray:
        return self._gen.uniform_codes(n, bits)

    def random_bits(self, n: int) -> np.ndarray:
        return (self._gen.next_u32(n) & np.uint64(1)).astype(np.int64)


class NumpySource(UniformCodeSource):
    """PCG64-backed source; same discrete alphabet, much faster in bulk."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def uniform_codes(self, n: int, bits: int) -> np.ndarray:
        if not 1 <= bits <= 62:
            raise ConfigurationError("bits must be in 1..62")
        return self._rng.integers(1, (1 << bits) + 1, size=n, dtype=np.int64)

    def random_bits(self, n: int) -> np.ndarray:
        return self._rng.integers(0, 2, size=n, dtype=np.int64)


class SplitStreamSource(UniformCodeSource):
    """PCG64 source with *independent* streams for codes and sign bits.

    :class:`NumpySource` draws codes and sign bits from one PCG64 stream,
    so consuming ``n`` samples one-at-a-time interleaves the stream
    differently than one batched ``sample_codes(n)`` call (code, bit,
    code, bit, ... versus n codes then n bits) and the outputs diverge.
    This source derives two child generators from one ``SeedSequence``
    spawn — one dedicated to ``uniform_codes``, one to ``random_bits`` —
    so each stream is consumed in sample order regardless of batching.
    PCG64's ``integers`` fills a batch element-by-element from the same
    stream as repeated size-1 calls, hence scalar and vectorized release
    paths produce **bit-identical** samples (the fleet-equivalence
    guarantee exercised by ``tests/unit/test_runtime_fleet.py``).

    ``seed`` may be an already-derived ``numpy.random.SeedSequence`` — a
    shard sub-seed from :func:`shard_seed_sequences` — in which case the
    source's streams are a pure function of that sequence's entropy and
    spawn key.  This is the sharded-fleet determinism anchor: a worker
    process rebuilding its source from the shipped sub-seed draws exactly
    the stream the coordinator would have drawn for that shard in
    process (``tests/property/test_shard_determinism.py``).
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, np.random.SeedSequence):
            seq = seed
        else:
            seq = np.random.SeedSequence(seed)
        self.seed_sequence = seq
        code_seq, bit_seq = seq.spawn(2)
        self._code_rng = np.random.Generator(np.random.PCG64(code_seq))
        self._bit_rng = np.random.Generator(np.random.PCG64(bit_seq))

    def uniform_codes(self, n: int, bits: int) -> np.ndarray:
        if not 1 <= bits <= 62:
            raise ConfigurationError("bits must be in 1..62")
        return self._code_rng.integers(1, (1 << bits) + 1, size=n, dtype=np.int64)

    def random_bits(self, n: int) -> np.ndarray:
        return self._bit_rng.integers(0, 2, size=n, dtype=np.int64)


def shard_seed_sequences(seed: SeedLike, n_shards: int) -> List[np.random.SeedSequence]:
    """Derive ``n_shards`` independent sub-seeds from one fleet seed.

    This is the *only* place shard randomness is derived (keeping the
    supply greppable, like :func:`audited_generator`).  The contract that
    makes sharded fleet execution deterministic:

    * the sub-seed of shard ``i`` is a pure function of
      ``(seed, n_shards, i)`` — independent of how many workers execute
      the shards, of execution order, and of which process runs them;
    * ``n_shards == 1`` returns the fleet seed itself, so a single-shard
      plan consumes **exactly** the unsharded
      :class:`SplitStreamSource` stream (bit-identical to the legacy
      batched fleet path);
    * for ``n_shards > 1`` the sub-seeds are ``SeedSequence.spawn``
      children of the fleet seed, so no shard stream aliases another or
      the unsharded stream.

    ``seed=None`` draws fresh OS entropy *once*; the returned sub-seeds
    still satisfy the invariants within the run (workers=1 and workers=W
    agree), they just differ between runs.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    if n_shards == 1:
        return [root]
    return list(root.spawn(n_shards))


def spawn_shard_sources(seed: SeedLike, n_shards: int) -> List["SplitStreamSource"]:
    """Per-shard :class:`SplitStreamSource` list (see :func:`shard_seed_sequences`)."""
    return [SplitStreamSource(seq) for seq in shard_seed_sequences(seed, n_shards)]


class LfsrSource(UniformCodeSource):
    """Standalone LFSR URNG option (ultra-low-area DP-Box variants).

    One maximal-length LFSR clocks out the code bits (``bits`` clocks per
    code, MSB-first, exactly as a serial hardware URNG would shift them
    into the sampler) and an independently seeded second LFSR supplies
    the sign bits, so code and sign streams do not alias.  Batched draws
    ride the vectorized :meth:`~repro.rng.lfsr._LinearFSR.draw` /
    ``bit_stream`` paths, which advance the registers exactly as scalar
    stepping would — scalar and batched consumption stay bit-identical.
    """

    def __init__(self, width: int = 31, seed: int = 1, topology: str = "fibonacci"):
        if width not in MAXIMAL_TAPS:
            raise ConfigurationError(
                f"no maximal tap set known for width {width}; "
                f"choose from {sorted(MAXIMAL_TAPS)}"
            )
        mask = (1 << width) - 1
        code_seed = seed & mask or 1
        # Decorrelate the sign register by seeding from the bit-reversed
        # complement; any nonzero distinct state works (same sequence,
        # different phase).
        sign_seed = (~seed) & mask or 1
        if topology == "fibonacci":
            self._code_gen = FibonacciLFSR(width, MAXIMAL_TAPS[width], code_seed)
            self._sign_gen = FibonacciLFSR(width, MAXIMAL_TAPS[width], sign_seed)
        elif topology == "galois":
            self._code_gen = GaloisLFSR.from_taps(width, MAXIMAL_TAPS[width], code_seed)
            self._sign_gen = GaloisLFSR.from_taps(width, MAXIMAL_TAPS[width], sign_seed)
        else:
            raise ConfigurationError(
                f"topology must be 'fibonacci' or 'galois', got {topology!r}"
            )

    def uniform_codes(self, n: int, bits: int) -> np.ndarray:
        if not 1 <= bits <= 62:
            raise ConfigurationError("bits must be in 1..62")
        raw = self._code_gen.draw(n, bits)
        # The URNG alphabet is {1, ..., 2**bits}: the all-zero word maps
        # to the top code, as in the Tausworthe adapter.
        raw[raw == 0] = 1 << bits
        return raw

    def random_bits(self, n: int) -> np.ndarray:
        return self._sign_gen.bit_stream(n).astype(np.int64)


class ExhaustiveSource(UniformCodeSource):
    """Emits every code ``1..2**bits`` exactly once per sweep, in order.

    Drawing more than ``2**bits`` codes wraps around to a fresh sweep.
    ``random_bits`` emits ``bit_block`` zeros, then ``bit_block`` ones,
    and so on; with ``bit_block = 2**bits`` a double sweep pairs every
    code with both signs exactly once — which is how the exact-PMF tests
    validate the sampler against the analytic counts.
    """

    def __init__(self, bit_block: int = 1) -> None:
        if bit_block < 1:
            raise ConfigurationError("bit_block must be >= 1")
        self._pos = 0
        self._bit_pos = 0
        self._bit_block = bit_block

    def uniform_codes(self, n: int, bits: int) -> np.ndarray:
        size = 1 << bits
        idx = (self._pos + np.arange(n, dtype=np.int64)) % size
        self._pos = (self._pos + n) % size
        return idx + 1

    def random_bits(self, n: int) -> np.ndarray:
        pos = self._bit_pos + np.arange(n, dtype=np.int64)
        bits = (pos // self._bit_block) % 2
        self._bit_pos += n
        return bits
