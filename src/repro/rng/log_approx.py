"""Piecewise-polynomial logarithm approximation.

The paper notes that the inverse-CDF logarithm can be implemented either
with CORDIC "or a number of polynomial segments of low degree" as done in
prior energy-efficient fixed-point RNG hardware.  This module provides
that second option: ``ln`` on the mantissa interval ``[1, 2)`` is
approximated by ``n_segments`` equal-width polynomial segments of a given
degree, with coefficients quantized to the datapath grid (a hardware
implementation stores them in a small ROM and evaluates Horner's rule
with one multiplier).

The class mirrors :class:`repro.rng.cordic.CordicLn`'s interface so the
two logarithm back-ends are interchangeable inside the Laplace sampler.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError

__all__ = ["PiecewisePolyLn"]


class PiecewisePolyLn:
    """Segmented polynomial ``ln`` on ``[1, 2)`` with range reduction."""

    def __init__(self, n_segments: int = 8, degree: int = 2, frac_bits: int = 24):
        if n_segments < 1:
            raise ConfigurationError("need at least one segment")
        if degree < 1:
            raise ConfigurationError("degree must be >= 1")
        if frac_bits < 4:
            raise ConfigurationError("frac_bits must be >= 4")
        self.n_segments = n_segments
        self.degree = degree
        self.frac_bits = frac_bits
        self.ln2 = int(round(math.log(2.0) * (1 << frac_bits)))
        self._coeffs = self._fit()

    @property
    def fingerprint(self):
        """Hashable identity for codebook cache keying.

        The fitted coefficient table is a deterministic function of
        these three parameters.
        """
        return ("ppoly", self.n_segments, self.degree, self.frac_bits)

    def _fit(self) -> np.ndarray:
        """Least-squares fit per segment; coefficients snapped to the grid.

        Each segment ``s`` covers ``[1 + s/S, 1 + (s+1)/S)``; the fit is in
        the local variable ``t = w - left_edge`` so coefficient magnitudes
        stay small (friendlier to fixed point).
        """
        step = 2.0 ** (-self.frac_bits)
        coeffs = np.zeros((self.n_segments, self.degree + 1))
        for s in range(self.n_segments):
            left = 1.0 + s / self.n_segments
            right = 1.0 + (s + 1) / self.n_segments
            t = np.linspace(0.0, right - left, 257)
            target = np.log(left + t)
            fit = np.polyfit(t, target, self.degree)  # highest degree first
            coeffs[s] = np.round(fit / step) * step
        return coeffs

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def ln_mantissa(self, w: np.ndarray) -> np.ndarray:
        """Approximate ``ln(w)`` for ``w`` in ``[1, 2)`` (vectorized)."""
        w = np.asarray(w, dtype=float)
        if np.any((w < 1.0) | (w >= 2.0)):
            raise ConfigurationError("mantissa must be in [1, 2)")
        seg = np.minimum((np.floor((w - 1.0) * self.n_segments)).astype(int),
                         self.n_segments - 1)
        t = w - (1.0 + seg / self.n_segments)
        out = np.zeros_like(w)
        step = 2.0 ** (-self.frac_bits)
        for d in range(self.degree + 1):
            # Horner's rule with requantization after each multiply-add,
            # matching a single-multiplier fixed-point datapath.
            out = np.round((out * t + self._coeffs[seg, d]) / step) * step
        return out

    def ln_uniform_codes(self, m: np.ndarray, input_bits: int) -> np.ndarray:
        """``ln(m * 2**-input_bits)`` as codes on the internal grid."""
        m = np.asarray(m, dtype=np.int64)
        if np.any((m < 1) | (m > (1 << input_bits))):
            raise ConfigurationError("codes outside the URNG alphabet")
        mf = m.astype(float)
        j = np.floor(np.log2(mf)).astype(np.int64)
        # Guard against float log2 landing exactly on a power-of-two edge.
        j = np.where(mf < 2.0 ** j, j - 1, j)
        j = np.where(mf >= 2.0 ** (j + 1), j + 1, j)
        w = mf / 2.0 ** j
        is_pow2 = w == 1.0
        safe_w = np.where(is_pow2, 1.5, w)
        ln_frac = np.where(is_pow2, 0.0, self.ln_mantissa(safe_w))
        ln_frac_codes = np.round(ln_frac * (1 << self.frac_bits)).astype(np.int64)
        return ln_frac_codes + (j - input_bits) * np.int64(self.ln2)

    def ln_uniform(self, m: int, input_bits: int) -> float:
        """Scalar convenience wrapper returning a float log value."""
        return float(
            self.ln_uniform_codes(np.asarray([m]), input_bits)[0]
        ) * 2.0 ** (-self.frac_bits)

    def max_abs_error(self, input_bits: int, sample_every: int = 1) -> float:
        """Worst absolute error vs ``np.log`` over the code alphabet."""
        codes = np.arange(1, (1 << input_bits) + 1, sample_every, dtype=np.int64)
        approx = self.ln_uniform_codes(codes, input_bits) * 2.0 ** (-self.frac_bits)
        exact = np.log(codes * 2.0 ** (-input_bits))
        return float(np.max(np.abs(approx - exact)))
