"""Generic fixed-point inversion-method noise generators.

The paper's analysis (Section III-A4) applies to *any* DP-guaranteeing
noise distribution realized on finite-precision hardware — it names
Laplace, Gaussian, and staircase.  This module generalizes the
fixed-point Laplace RNG's structure: a ``Bu``-bit uniform code drives a
symmetric inverse-half-CDF, the magnitude is rounded to the ``Δ`` grid
and saturated to ``By`` bits, and a random bit supplies the sign.

Concrete distributions subclass :class:`FxpInversionRng` by providing the
magnitude transform; the exact output PMF is obtained by enumerating the
full code alphabet through the *actual* datapath, so the analyzer in
:mod:`repro.privacy.loss` treats these generators identically to Laplace.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .laplace_fxp import FxpLaplaceConfig
from .pmf import DiscretePMF
from .urng import NumpySource, UniformCodeSource

__all__ = ["FxpInversionRng"]


class FxpInversionRng(abc.ABC):
    """Fixed-point sampler: uniform code → magnitude → grid → signed.

    Reuses :class:`FxpLaplaceConfig` for the bit-width/grid bookkeeping
    (``lam`` is interpreted by each subclass as its primary scale).
    """

    def __init__(
        self,
        config: FxpLaplaceConfig,
        source: Optional[UniformCodeSource] = None,
    ):
        self.config = config
        self.source = source if source is not None else NumpySource()
        self._pmf_cache: Optional[DiscretePMF] = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def magnitude_from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Inverse half-CDF: uniforms in (0, 1] → nonnegative magnitudes.

        Must be finite for every representable ``u`` (the all-ones code
        maps to the distribution's largest representable magnitude, which
        is what bounds the support — the first failure cause).
        """

    @property
    @abc.abstractmethod
    def max_magnitude_real(self) -> float:
        """Largest magnitude before rounding (at the smallest code)."""

    # ------------------------------------------------------------------
    @property
    def top_code(self) -> int:
        """Largest emitted magnitude code (rounded, saturated)."""
        unsat = int(math.floor(self.max_magnitude_real / self.config.delta + 0.5))
        return min(unsat, self.config.max_code)

    def _codes_from_uniform(self, m: np.ndarray) -> np.ndarray:
        # dplint: allow[DPL002] -- u = m*2^-Bu is the paper's exact code
        # scaling (Section III-A2); float64 represents it losslessly for
        # Bu <= 40, so no finite-precision semantics are introduced.
        u = m.astype(float) * 2.0 ** (-self.config.input_bits)
        magnitude = self.magnitude_from_uniform(u)
        if np.any(~np.isfinite(magnitude)) or np.any(magnitude < 0):
            raise ConfigurationError("magnitude transform must be finite and >= 0")
        k = np.floor(magnitude / self.config.delta + 0.5).astype(np.int64)
        return np.minimum(k, self.config.max_code)

    # ------------------------------------------------------------------
    def sample_codes(self, n: int) -> np.ndarray:
        """Draw ``n`` signed output codes."""
        m = self.source.uniform_codes(n, self.config.input_bits)
        k = self._codes_from_uniform(m)
        sign = 1 - 2 * self.source.random_bits(n)
        return sign * k

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` noise values in real units."""
        return self.sample_codes(n) * self.config.delta

    def exact_pmf(self) -> DiscretePMF:
        """Exact signed PMF by enumerating the full code alphabet."""
        if self._pmf_cache is not None:
            return self._pmf_cache
        bu = self.config.input_bits
        m = np.arange(1, (1 << bu) + 1, dtype=np.int64)
        k = self._codes_from_uniform(m)
        top = int(k.max())
        mag_counts = np.bincount(k, minlength=top + 1)
        denom = 2 * (1 << bu)
        signed = np.zeros(2 * top + 1, dtype=np.int64)
        signed[top] = 2 * mag_counts[0]
        if top > 0:
            signed[top + 1 :] = mag_counts[1:]
            signed[:top] = mag_counts[1:][::-1]
        self._pmf_cache = DiscretePMF.from_counts(
            self.config.delta, -top, signed, denom
        )
        return self._pmf_cache
