"""Discrete probability mass functions on a uniform grid.

The exact privacy-loss analysis (paper Section III) manipulates noise
distributions that live on the fixed-point grid ``k * delta``.  This
module provides the small PMF algebra those analyses need: shifting (what
adding a constant sensor value does), truncation with renormalization
(resampling), clamping with boundary atoms (thresholding), tails, and
sampling.

Probabilities are stored as float64 but are exact whenever they originate
from integer URNG-code counts over a power-of-two denominator, which is
the case for every PMF the library constructs — float64 represents
``count / 2**(Bu+1)`` exactly for ``Bu <= 52``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["DiscretePMF"]


@dataclasses.dataclass
class DiscretePMF:
    """PMF supported on the grid ``{(min_k + i) * step : i in range(len(probs))}``."""

    step: float
    min_k: int
    probs: np.ndarray

    def __post_init__(self) -> None:
        self.probs = np.asarray(self.probs, dtype=float)
        if self.probs.ndim != 1 or self.probs.size == 0:
            raise ConfigurationError("probs must be a nonempty 1-D array")
        if self.step <= 0:
            raise ConfigurationError("step must be positive")
        if np.any(self.probs < 0):
            raise ConfigurationError("probabilities must be nonnegative")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(cls, step: float, min_k: int, counts: np.ndarray, denom: int) -> "DiscretePMF":
        """Exact PMF from integer counts over a common denominator."""
        counts = np.asarray(counts, dtype=np.int64)
        if np.any(counts < 0):
            raise ConfigurationError("counts must be nonnegative")
        if counts.sum() != denom:
            raise ConfigurationError(
                f"counts sum to {int(counts.sum())}, expected denominator {denom}"
            )
        return cls(step=step, min_k=min_k, probs=counts / float(denom))

    @classmethod
    def from_samples(cls, step: float, values: np.ndarray) -> "DiscretePMF":
        """Empirical PMF of grid-aligned samples (values are ``k * step``)."""
        k = np.asarray(np.round(np.asarray(values, dtype=float) / step), dtype=np.int64)
        kmin, kmax = int(k.min()), int(k.max())
        counts = np.bincount(k - kmin, minlength=kmax - kmin + 1)
        return cls(step=step, min_k=kmin, probs=counts / counts.sum())

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def max_k(self) -> int:
        """Largest grid index of the stored window."""
        return self.min_k + self.probs.size - 1

    @property
    def total(self) -> float:
        """Total stored mass (1.0 for proper distributions)."""
        return float(self.probs.sum())

    def support_values(self) -> np.ndarray:
        """Real values of every stored grid point."""
        return (np.arange(self.min_k, self.max_k + 1)) * self.step

    def nonzero_bounds(self) -> Tuple[int, int]:
        """(min_k, max_k) over grid points with strictly positive mass."""
        idx = np.flatnonzero(self.probs > 0)
        if idx.size == 0:
            raise ConfigurationError("PMF has no positive mass")
        return self.min_k + int(idx[0]), self.min_k + int(idx[-1])

    def prob_at(self, k: int) -> float:
        """Probability of grid index ``k`` (0 outside the stored window)."""
        i = k - self.min_k
        if 0 <= i < self.probs.size:
            return float(self.probs[i])
        return 0.0

    def prob_array(self, k_lo: int, k_hi: int) -> np.ndarray:
        """Probabilities on ``k_lo..k_hi`` inclusive, zero-padded."""
        if k_hi < k_lo:
            raise ConfigurationError("k_hi must be >= k_lo")
        out = np.zeros(k_hi - k_lo + 1)
        src_lo = max(k_lo, self.min_k)
        src_hi = min(k_hi, self.max_k)
        if src_lo <= src_hi:
            out[src_lo - k_lo : src_hi - k_lo + 1] = self.probs[
                src_lo - self.min_k : src_hi - self.min_k + 1
            ]
        return out

    def tail_ge(self, k: int) -> float:
        """``Pr[K >= k]``."""
        i = max(k - self.min_k, 0)
        if i >= self.probs.size:
            return 0.0
        return float(self.probs[i:].sum())

    def tail_le(self, k: int) -> float:
        """``Pr[K <= k]``."""
        i = k - self.min_k
        if i < 0:
            return 0.0
        return float(self.probs[: min(i + 1, self.probs.size)].sum())

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Expected value in real units."""
        return float(np.dot(self.support_values(), self.probs) / self.total)

    def variance(self) -> float:
        """Variance in real units squared."""
        v = self.support_values()
        mu = self.mean()
        return float(np.dot((v - mu) ** 2, self.probs) / self.total)

    # ------------------------------------------------------------------
    # Transformations (all return new PMFs)
    # ------------------------------------------------------------------
    def shifted(self, dk: int) -> "DiscretePMF":
        """PMF of ``K + dk`` (adding a grid-aligned constant)."""
        return DiscretePMF(self.step, self.min_k + dk, self.probs.copy())

    def truncated(self, k_lo: int, k_hi: int, renormalize: bool = True) -> "DiscretePMF":
        """Conditional PMF given ``k_lo <= K <= k_hi`` (resampling)."""
        probs = self.prob_array(k_lo, k_hi)
        mass = probs.sum()
        if mass <= 0:
            raise ConfigurationError("truncation window contains no mass")
        if renormalize:
            probs = probs / mass
        return DiscretePMF(self.step, k_lo, probs)

    def clamped(self, k_lo: int, k_hi: int) -> "DiscretePMF":
        """PMF of ``clip(K, k_lo, k_hi)`` (thresholding boundary atoms)."""
        if k_hi < k_lo:
            raise ConfigurationError("k_hi must be >= k_lo")
        probs = self.prob_array(k_lo, k_hi)
        probs[0] += self.tail_le(k_lo - 1)
        probs[-1] += self.tail_ge(k_hi + 1)
        return DiscretePMF(self.step, k_lo, probs)

    def normalized(self) -> "DiscretePMF":
        """Scale stored mass to 1."""
        t = self.total
        if t <= 0:
            raise ConfigurationError("cannot normalize zero mass")
        return DiscretePMF(self.step, self.min_k, self.probs / t)

    # ------------------------------------------------------------------
    # Sampling & comparison
    # ------------------------------------------------------------------
    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` real-valued samples from the PMF."""
        from .urng import audited_generator

        rng = rng or audited_generator()
        p = self.probs / self.total
        ks = rng.choice(np.arange(self.min_k, self.max_k + 1), size=n, p=p)
        return ks * self.step

    def total_variation(self, other: "DiscretePMF") -> float:
        """Total-variation distance to another PMF on the same step."""
        if not np.isclose(self.step, other.step):
            raise ConfigurationError("PMFs must share a grid step")
        lo = min(self.min_k, other.min_k)
        hi = max(self.max_k, other.max_k)
        a = self.prob_array(lo, hi) / self.total
        b = other.prob_array(lo, hi) / other.total
        return 0.5 * float(np.abs(a - b).sum())
