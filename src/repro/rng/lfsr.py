"""Linear-feedback shift registers.

LFSRs are the cheapest hardware pseudo-random bit sources and serve two
roles here: (a) as a standalone ultra-low-area URNG option for DP-Box
variants, and (b) as the building block intuition behind the Tausworthe
generator (a Tausworthe stage *is* an LFSR with a particular tap/output
structure).  Both Fibonacci (external-XOR) and Galois (internal-XOR)
topologies are provided, bit-exact to their hardware definitions.

Batched generation is vectorized: an LFSR output stream satisfies the
linear recurrence of its characteristic polynomial ``p(x)``, and over
GF(2) ``p(x)**(2**j) = p(x**(2**j))``, so the same recurrence holds with
all delays scaled by ``2**j``.  :meth:`_LinearFSR.bit_stream` cascades
through doubled recurrences until the delays are large enough to emit
thousands of bits per numpy slice-XOR, which is what lets the standalone
LFSR URNG option (:class:`repro.rng.urng.LfsrSource`) feed batched
draws — ``draw(n, bits)`` is a reshape + dot over that stream.  The
scalar :meth:`step` is kept bit-exact to the hardware definition and the
vectorized path advances the register state exactly as ``n`` scalar
steps would, so the two can be interleaved freely.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["FibonacciLFSR", "GaloisLFSR", "MAXIMAL_TAPS"]

#: Known maximal-length tap sets (XNOR/XOR Fibonacci convention, taps are
#: 1-indexed bit positions whose XOR feeds the input).  Source: standard
#: tables for maximal-length polynomials.
MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    7: (7, 6),
    8: (8, 6, 5, 4),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    20: (20, 17),
    23: (23, 18),
    31: (31, 28),
    32: (32, 22, 2, 1),
}

#: Cap on the doubled-recurrence chunk size (bits emitted per slice-XOR).
_MAX_CHUNK_LOG2 = 13


class _LinearFSR:
    """Shared vectorized bit-stream engine for linear shift registers.

    Subclasses provide the scalar :meth:`step`, the output-recurrence
    delays (:meth:`_delays`), the first ``width`` output bits
    (:meth:`_initial_outputs`) and the state reconstruction from a
    ``width``-bit lookahead (:meth:`_state_from_outputs`).
    """

    width: int
    state: int

    # -- subclass contract ---------------------------------------------
    def step(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _delays(self) -> Tuple[int, ...]:
        """Delays ``d`` of the output recurrence ``b[s] = XOR b[s-d]``."""
        raise NotImplementedError

    def _initial_outputs(self) -> np.ndarray:
        """The next ``width`` output bits, *without* advancing state."""
        raise NotImplementedError

    def _state_from_outputs(self, lookahead: np.ndarray) -> int:
        """Register state whose next ``width`` outputs are ``lookahead``."""
        raise NotImplementedError

    # -- vectorized generation -----------------------------------------
    def bit_stream(self, n: int) -> np.ndarray:
        """The next ``n`` output bits as a uint8 array (vectorized).

        Advances the register exactly as ``n`` calls to :meth:`step`
        would, so scalar and batched draws can be interleaved.
        """
        if n < 0:
            raise ConfigurationError("bit count must be nonnegative")
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        w = self.width
        delays = self._delays()
        total = n + w  # w extra bits reconstruct the final state
        out = np.empty(total, dtype=np.uint8)
        out[:w] = self._initial_outputs()
        # Cascade of doubled recurrences: level j uses delays d * 2**j,
        # valid from position w * 2**j, and can emit 2**j bits per slice
        # (the minimum delay is >= 2**j).  Each level at most doubles the
        # generated prefix, so the bootstrap costs O(width * levels)
        # numpy ops before the final level streams the bulk.
        pos = w  # bits generated so far
        level = 0
        while pos < total:
            scaled = [d << level for d in delays]
            chunk = 1 << level
            # Level `level` is valid from position w << level; it carries
            # the stream to w << (level + 1), where the next doubling
            # takes over — unless the level is capped, in which case it
            # streams the rest.
            at_cap = level >= _MAX_CHUNK_LOG2
            limit = total if at_cap else min(total, w << (level + 1))
            while pos < limit:
                end = min(pos + chunk, limit)
                acc = out[pos - scaled[0] : end - scaled[0]].copy()
                for d in scaled[1:]:
                    acc ^= out[pos - d : end - d]
                out[pos:end] = acc
                pos = end
            if not at_cap:
                level += 1
        self.state = self._state_from_outputs(out[n : n + w])
        return out[:n]

    def draw(self, n: int, bits: int) -> np.ndarray:
        """``n`` codes of ``bits`` output bits each (MSB-first), batched.

        Consumes ``n * bits`` register clocks, exactly like ``n`` calls
        to :meth:`next_bits`, but vectorized end to end.
        """
        if bits < 1:
            raise ConfigurationError("bits per draw must be >= 1")
        stream = self.bit_stream(n * bits).astype(np.int64)
        powers = np.left_shift(1, np.arange(bits - 1, -1, -1), dtype=np.int64)
        return stream.reshape(n, bits) @ powers

    def next_bits(self, n: int) -> int:
        """Collect ``n`` output bits MSB-first into one integer."""
        value = 0
        for bit in self.bit_stream(n):
            value = (value << 1) | int(bit)
        return value

    def sequence(self, n: int) -> List[int]:
        """Return the next ``n`` output bits as a list."""
        return self.bit_stream(n).tolist()


class FibonacciLFSR(_LinearFSR):
    """External-XOR LFSR: new bit = XOR of the tapped bits, shifted in."""

    def __init__(self, width: int, taps: Sequence[int], seed: int = 1):
        if width < 2:
            raise ConfigurationError("LFSR width must be >= 2")
        if not taps or any(t < 1 or t > width for t in taps):
            raise ConfigurationError(f"taps must be within 1..{width}, got {taps}")
        if seed <= 0 or seed >= (1 << width):
            raise ConfigurationError("seed must be a nonzero state within width bits")
        self.width = width
        self.taps = tuple(sorted(set(taps), reverse=True))
        self.state = seed

    @classmethod
    def maximal(cls, width: int, seed: int = 1) -> "FibonacciLFSR":
        """Construct a maximal-length LFSR from the built-in tap table."""
        if width not in MAXIMAL_TAPS:
            raise ConfigurationError(f"no maximal tap set known for width {width}")
        return cls(width, MAXIMAL_TAPS[width], seed)

    def step(self) -> int:
        """Advance one clock; return the output bit (the bit shifted out).

        Tap ``t`` (the exponent of the feedback polynomial term) reads the
        register bit ``width - t`` in this right-shift topology — the
        standard table convention.
        """
        fb = 0
        for t in self.taps:
            fb ^= (self.state >> (self.width - t)) & 1
        out = self.state & 1
        self.state = (self.state >> 1) | (fb << (self.width - 1))
        return out

    # -- vectorization hooks -------------------------------------------
    # In this topology register bit j exits at clock t + j, so the next
    # ``width`` outputs ARE the state bits (LSB-first), and the feedback
    # definition gives the output recurrence b[s] = XOR_taps b[s - tap].
    def _delays(self) -> Tuple[int, ...]:
        return self.taps

    def _initial_outputs(self) -> np.ndarray:
        s = self.state
        return np.array([(s >> j) & 1 for j in range(self.width)], dtype=np.uint8)

    def _state_from_outputs(self, lookahead: np.ndarray) -> int:
        state = 0
        for j in range(self.width):
            state |= int(lookahead[j]) << j
        return state


class GaloisLFSR(_LinearFSR):
    """Internal-XOR LFSR; same sequence set as Fibonacci, one-gate-deep."""

    def __init__(self, width: int, mask: int, seed: int = 1):
        if width < 2:
            raise ConfigurationError("LFSR width must be >= 2")
        if mask <= 0 or mask >= (1 << width):
            raise ConfigurationError("mask must be a nonzero value within width bits")
        if seed <= 0 or seed >= (1 << width):
            raise ConfigurationError("seed must be a nonzero state within width bits")
        self.width = width
        self.mask = mask
        self.state = seed

    @classmethod
    def from_taps(cls, width: int, taps: Sequence[int], seed: int = 1) -> "GaloisLFSR":
        """Build the Galois mask equivalent to a Fibonacci tap list."""
        mask = 0
        for t in taps:
            mask |= 1 << (t - 1)
        return cls(width, mask, seed)

    def step(self) -> int:
        """Advance one clock; return the output bit.

        The mask has bit ``t-1`` set per tap ``t``; maximal polynomials
        always include ``x^width``, whose mask bit re-inserts the MSB
        after the shift.
        """
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self.mask
        return out

    # -- vectorization hooks -------------------------------------------
    # Unrolling s_{t+1}[j] = s_t[j+1] ^ out(t)·mask[j] gives the output
    # recurrence b[s] = XOR_{mask bit j set} b[s - (j+1)] and the state
    # reconstruction s_t[j] = b[t+j] ^ XOR_{i<j} b[t+i]·mask[j-1-i].
    def _delays(self) -> Tuple[int, ...]:
        return tuple(j + 1 for j in range(self.width) if (self.mask >> j) & 1)

    def _initial_outputs(self) -> np.ndarray:
        probe = GaloisLFSR(self.width, self.mask, self.state)
        return np.array([probe.step() for _ in range(self.width)], dtype=np.uint8)

    def _state_from_outputs(self, lookahead: np.ndarray) -> int:
        state = 0
        for j in range(self.width):
            bit = int(lookahead[j])
            for i in range(j):
                if (self.mask >> (j - 1 - i)) & 1:
                    bit ^= int(lookahead[i])
            state |= bit << j
        return state
