"""Linear-feedback shift registers.

LFSRs are the cheapest hardware pseudo-random bit sources and serve two
roles here: (a) as a standalone ultra-low-area URNG option for DP-Box
variants, and (b) as the building block intuition behind the Tausworthe
generator (a Tausworthe stage *is* an LFSR with a particular tap/output
structure).  Both Fibonacci (external-XOR) and Galois (internal-XOR)
topologies are provided, bit-exact to their hardware definitions.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError

__all__ = ["FibonacciLFSR", "GaloisLFSR", "MAXIMAL_TAPS"]

#: Known maximal-length tap sets (XNOR/XOR Fibonacci convention, taps are
#: 1-indexed bit positions whose XOR feeds the input).  Source: standard
#: tables for maximal-length polynomials.
MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    7: (7, 6),
    8: (8, 6, 5, 4),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    20: (20, 17),
    23: (23, 18),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


class FibonacciLFSR:
    """External-XOR LFSR: new bit = XOR of the tapped bits, shifted in."""

    def __init__(self, width: int, taps: Sequence[int], seed: int = 1):
        if width < 2:
            raise ConfigurationError("LFSR width must be >= 2")
        if not taps or any(t < 1 or t > width for t in taps):
            raise ConfigurationError(f"taps must be within 1..{width}, got {taps}")
        if seed <= 0 or seed >= (1 << width):
            raise ConfigurationError("seed must be a nonzero state within width bits")
        self.width = width
        self.taps = tuple(sorted(set(taps), reverse=True))
        self.state = seed

    @classmethod
    def maximal(cls, width: int, seed: int = 1) -> "FibonacciLFSR":
        """Construct a maximal-length LFSR from the built-in tap table."""
        if width not in MAXIMAL_TAPS:
            raise ConfigurationError(f"no maximal tap set known for width {width}")
        return cls(width, MAXIMAL_TAPS[width], seed)

    def step(self) -> int:
        """Advance one clock; return the output bit (the bit shifted out).

        Tap ``t`` (the exponent of the feedback polynomial term) reads the
        register bit ``width - t`` in this right-shift topology — the
        standard table convention.
        """
        fb = 0
        for t in self.taps:
            fb ^= (self.state >> (self.width - t)) & 1
        out = self.state & 1
        self.state = (self.state >> 1) | (fb << (self.width - 1))
        return out

    def next_bits(self, n: int) -> int:
        """Collect ``n`` output bits MSB-first into one integer."""
        value = 0
        for _ in range(n):
            value = (value << 1) | self.step()
        return value

    def sequence(self, n: int) -> List[int]:
        """Return the next ``n`` output bits as a list."""
        return [self.step() for _ in range(n)]


class GaloisLFSR:
    """Internal-XOR LFSR; same sequence set as Fibonacci, one-gate-deep."""

    def __init__(self, width: int, mask: int, seed: int = 1):
        if width < 2:
            raise ConfigurationError("LFSR width must be >= 2")
        if mask <= 0 or mask >= (1 << width):
            raise ConfigurationError("mask must be a nonzero value within width bits")
        if seed <= 0 or seed >= (1 << width):
            raise ConfigurationError("seed must be a nonzero state within width bits")
        self.width = width
        self.mask = mask
        self.state = seed

    @classmethod
    def from_taps(cls, width: int, taps: Sequence[int], seed: int = 1) -> "GaloisLFSR":
        """Build the Galois mask equivalent to a Fibonacci tap list."""
        mask = 0
        for t in taps:
            mask |= 1 << (t - 1)
        return cls(width, mask, seed)

    def step(self) -> int:
        """Advance one clock; return the output bit.

        The mask has bit ``t-1`` set per tap ``t``; maximal polynomials
        always include ``x^width``, whose mask bit re-inserts the MSB
        after the shift.
        """
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self.mask
        return out

    def next_bits(self, n: int) -> int:
        """Collect ``n`` output bits MSB-first into one integer."""
        value = 0
        for _ in range(n):
            value = (value << 1) | self.step()
        return value
