"""Random-number generation substrate.

Everything between raw hardware bits and a Laplace noise sample lives
here: LFSR and Tausworthe uniform generators, CORDIC and piecewise-
polynomial logarithm units, the ideal (float) Laplace sampler, the
fixed-point Laplace RNG of the paper with its exact output PMF, and the
discrete-PMF algebra used by the privacy analysis.
"""

from .codebook import (
    CodebookCache,
    CodebookEntry,
    codebook_cache,
    configure_codebooks,
)
from .cordic import CordicLn, cordic_iteration_schedule
from .gaussian import FxpGaussianRng, gaussian_sigma, probit
from .geometric import FxpGeometricRng, IdealTwoSidedGeometric, geometric_alpha
from .inversion import FxpInversionRng
from .laplace_fxp import FxpLaplaceConfig, FxpLaplaceRng
from .laplace_ideal import IdealLaplace
from .lfsr import FibonacciLFSR, GaloisLFSR, MAXIMAL_TAPS
from .log_approx import PiecewisePolyLn
from .pmf import DiscretePMF
from .staircase import FxpStaircaseRng, StaircaseParams, optimal_gamma
from .tausworthe import Taus88, VectorTaus88, taus88_seed_streams
from .urng import (
    ExhaustiveSource,
    LfsrSource,
    NumpySource,
    SplitStreamSource,
    TauswortheSource,
    UniformCodeSource,
    audited_generator,
    shard_seed_sequences,
    spawn_shard_sources,
)

__all__ = [
    "CodebookCache",
    "CodebookEntry",
    "codebook_cache",
    "configure_codebooks",
    "CordicLn",
    "cordic_iteration_schedule",
    "FxpGaussianRng",
    "FxpGeometricRng",
    "IdealTwoSidedGeometric",
    "geometric_alpha",
    "gaussian_sigma",
    "probit",
    "FxpInversionRng",
    "FxpStaircaseRng",
    "StaircaseParams",
    "optimal_gamma",
    "FxpLaplaceConfig",
    "FxpLaplaceRng",
    "IdealLaplace",
    "FibonacciLFSR",
    "GaloisLFSR",
    "MAXIMAL_TAPS",
    "PiecewisePolyLn",
    "DiscretePMF",
    "Taus88",
    "VectorTaus88",
    "taus88_seed_streams",
    "ExhaustiveSource",
    "LfsrSource",
    "NumpySource",
    "SplitStreamSource",
    "TauswortheSource",
    "UniformCodeSource",
    "audited_generator",
    "shard_seed_sequences",
    "spawn_shard_sources",
]
