"""Tausworthe (taus88) uniform random number generator.

DP-Box draws its uniform inputs from "a Tausworthe random number
generator" (paper Section IV-B, citing the fixed-point RNG literature).
We implement L'Ecuyer's classic three-component combined Tausworthe
generator (period ~2**88) in two forms:

* :class:`Taus88` — a bit-exact scalar model of the hardware: three 32-bit
  shift-register components advanced once per clock, outputs XORed.
* :class:`VectorTaus88` — a lane-parallel numpy variant used by the
  large-scale utility experiments.  Each lane is an independent, bit-exact
  taus88 stream; lane 0 with the same seed reproduces :class:`Taus88`
  exactly (tests assert this).

Both expose ``next_u32`` / ``uniform_codes`` so the Laplace samplers can
consume raw ``Bu``-bit codes without any floating-point intermediary.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Taus88", "VectorTaus88", "taus88_seed_streams"]

_M32 = 0xFFFFFFFF

# Component parameters (q, s, k-mask) of taus88; the masks zero the bits
# that do not participate in the recurrence of each component.
_MASK1 = 4294967294  # ~1
_MASK2 = 4294967288  # ~7
_MASK3 = 4294967280  # ~15


def _check_seed(s1: int, s2: int, s3: int) -> None:
    if s1 < 2 or s2 < 8 or s3 < 16:
        raise ConfigurationError(
            "taus88 seeds must satisfy s1 >= 2, s2 >= 8, s3 >= 16 "
            f"(got {s1}, {s2}, {s3})"
        )


def taus88_seed_streams(master_seed: int, n_streams: int) -> np.ndarray:
    """Derive ``n_streams`` valid (s1, s2, s3) seed triples from one seed.

    Uses a SplitMix64-style scrambler so nearby master seeds give unrelated
    streams.  Returns a ``(n_streams, 3)`` uint64 array.
    """
    if n_streams < 1:
        raise ConfigurationError("need at least one stream")
    z = (np.uint64(master_seed) + np.uint64(0x9E3779B97F4A7C15) * (
        np.arange(1, 3 * n_streams + 1, dtype=np.uint64)
    ))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    seeds = (z & np.uint64(_M32)).reshape(n_streams, 3)
    # Enforce the minimum-seed constraints without losing entropy.
    seeds[:, 0] |= np.uint64(2)
    seeds[:, 1] |= np.uint64(8)
    seeds[:, 2] |= np.uint64(16)
    return seeds


class Taus88:
    """Bit-exact scalar taus88: three components, one output per clock."""

    def __init__(self, seed: int = 12345):
        seeds = taus88_seed_streams(seed, 1)[0]
        self.s1, self.s2, self.s3 = (int(seeds[0]), int(seeds[1]), int(seeds[2]))
        _check_seed(self.s1, self.s2, self.s3)

    @classmethod
    def from_state(cls, s1: int, s2: int, s3: int) -> "Taus88":
        """Construct directly from component states (hardware snapshot)."""
        _check_seed(s1, s2, s3)
        gen = cls.__new__(cls)
        gen.s1, gen.s2, gen.s3 = s1 & _M32, s2 & _M32, s3 & _M32
        return gen

    @property
    def state(self) -> Tuple[int, int, int]:
        """Current (s1, s2, s3) register contents."""
        return (self.s1, self.s2, self.s3)

    def next_u32(self) -> int:
        """Advance one clock and return the 32-bit combined output."""
        b = (((self.s1 << 13) & _M32) ^ self.s1) >> 19
        self.s1 = (((self.s1 & _MASK1) << 12) & _M32) ^ b
        b = (((self.s2 << 2) & _M32) ^ self.s2) >> 25
        self.s2 = (((self.s2 & _MASK2) << 4) & _M32) ^ b
        b = (((self.s3 << 3) & _M32) ^ self.s3) >> 11
        self.s3 = (((self.s3 & _MASK3) << 17) & _M32) ^ b
        return self.s1 ^ self.s2 ^ self.s3

    def uniform_code(self, bits: int) -> int:
        """A uniform code in ``{1, ..., 2**bits}`` (never zero).

        The paper's URNG output is ``u = m * 2**-Bu`` with
        ``m in {1, ..., 2**Bu}`` so that ``log(u)`` is always finite; the
        hardware takes the top ``Bu`` bits and treats the all-zeros code as
        the full-scale value.  ``bits`` may not exceed 32.
        """
        if not 1 <= bits <= 32:
            raise ConfigurationError("bits must be in 1..32")
        raw = self.next_u32() >> (32 - bits)
        return raw if raw != 0 else (1 << bits)

    def uniform(self, bits: int = 32) -> float:
        """A float uniform in (0, 1]: ``uniform_code(bits) * 2**-bits``."""
        return self.uniform_code(bits) * 2.0 ** (-bits)


class VectorTaus88:
    """Lane-parallel taus88: ``n_lanes`` independent bit-exact streams."""

    def __init__(self, seed: int = 12345, n_lanes: int = 1024):
        seeds = taus88_seed_streams(seed, n_lanes).astype(np.uint64)
        self.n_lanes = n_lanes
        self._s1 = seeds[:, 0] & np.uint64(_M32)
        self._s2 = seeds[:, 1] & np.uint64(_M32)
        self._s3 = seeds[:, 2] & np.uint64(_M32)

    def _step(self) -> np.ndarray:
        m32 = np.uint64(_M32)
        s1, s2, s3 = self._s1, self._s2, self._s3
        b = (((s1 << np.uint64(13)) & m32) ^ s1) >> np.uint64(19)
        s1 = (((s1 & np.uint64(_MASK1)) << np.uint64(12)) & m32) ^ b
        b = (((s2 << np.uint64(2)) & m32) ^ s2) >> np.uint64(25)
        s2 = (((s2 & np.uint64(_MASK2)) << np.uint64(4)) & m32) ^ b
        b = (((s3 << np.uint64(3)) & m32) ^ s3) >> np.uint64(11)
        s3 = (((s3 & np.uint64(_MASK3)) << np.uint64(17)) & m32) ^ b
        self._s1, self._s2, self._s3 = s1, s2, s3
        return s1 ^ s2 ^ s3

    def next_u32(self, n: int) -> np.ndarray:
        """Return ``n`` 32-bit outputs, drawn round-robin across lanes."""
        rounds = -(-n // self.n_lanes)
        chunks = [self._step() for _ in range(rounds)]
        return np.concatenate(chunks)[:n].astype(np.uint64)

    def uniform_codes(self, n: int, bits: int) -> np.ndarray:
        """``n`` uniform codes in ``{1, ..., 2**bits}`` as int64."""
        if not 1 <= bits <= 32:
            raise ConfigurationError("bits must be in 1..32")
        raw = (self.next_u32(n) >> np.uint64(32 - bits)).astype(np.int64)
        raw[raw == 0] = 1 << bits
        return raw

    def uniforms(self, n: int, bits: int = 32) -> np.ndarray:
        """``n`` float uniforms in (0, 1]."""
        return self.uniform_codes(n, bits) * 2.0 ** (-bits)
