"""Fixed-point hyperbolic CORDIC natural logarithm.

DP-Box computes the inverse-CDF logarithm "by implementing a CORDIC
logarithm function ... the entire logarithm computation can be completed
in a single cycle" (paper Section IV-B) — i.e. the iterations are unrolled
combinationally.  We model the arithmetic bit-exactly:

* vectoring-mode hyperbolic CORDIC evaluates ``atanh(y/x)``;
* with ``x = w + 1`` and ``y = w - 1`` this yields ``ln(w) = 2*atanh(...)``
  for the mantissa ``w in [1, 2)``;
* range reduction handles the full URNG alphabet:
  ``ln(m * 2**-Bu) = ln(w) + (j - Bu) * ln(2)`` where ``m = w * 2**j``.

Hyperbolic CORDIC only converges if iterations ``4, 13, 40, ...``
(``i_{k+1} = 3*i_k + 1``) are executed twice; :class:`CordicLn` does so.

All internal state is plain integer arithmetic on a ``frac_bits`` grid, so
the model is faithful to an RTL datapath; a numpy-vectorized evaluation is
provided for bulk use and is bit-identical to the scalar path.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CordicLn", "cordic_iteration_schedule"]


def cordic_iteration_schedule(n_iterations: int) -> List[int]:
    """Hyperbolic-CORDIC shift schedule with the mandatory repeats.

    Returns the sequence of shift amounts ``i`` (starting at 1); indices
    from the series 4, 13, 40, ... appear twice, which is required for the
    iteration to converge over the full input range.
    """
    if n_iterations < 1:
        raise ConfigurationError("need at least one CORDIC iteration")
    schedule: List[int] = []
    repeat_next = 4
    i = 1
    while len(schedule) < n_iterations:
        schedule.append(i)
        if i == repeat_next and len(schedule) < n_iterations:
            schedule.append(i)  # mandatory repeated iteration
            repeat_next = 3 * repeat_next + 1
        i += 1
    return schedule


class CordicLn:
    """Fixed-point natural logarithm of ``m * 2**-Bu`` via CORDIC.

    Parameters
    ----------
    frac_bits:
        Fractional bits of the internal x/y/z datapath.  The synthesized
        DP-Box uses a 20-bit noised output; its log unit carries a few
        guard bits, so the default is 24.
    n_iterations:
        Number of CORDIC micro-rotations (including repeats).  Accuracy is
        roughly one bit per iteration up to the datapath resolution.
    """

    def __init__(self, frac_bits: int = 24, n_iterations: int = 20):
        if frac_bits < 4:
            raise ConfigurationError("frac_bits must be >= 4")
        self.frac_bits = frac_bits
        self.n_iterations = n_iterations
        self.schedule = cordic_iteration_schedule(n_iterations)
        one = 1 << frac_bits
        #: atanh(2**-i) constants on the datapath grid (rounded to nearest).
        self.atanh_table = [
            int(round(math.atanh(2.0 ** (-i)) * one)) for i in self.schedule
        ]
        #: ln(2) on the datapath grid, used by the range reducer.
        self.ln2 = int(round(math.log(2.0) * one))

    @property
    def fingerprint(self):
        """Hashable identity for codebook cache keying.

        Covers every parameter the output depends on (the schedule and
        atanh table are derived from these deterministically).
        """
        return ("cordic", self.frac_bits, self.n_iterations)

    # ------------------------------------------------------------------
    # Core: ln of a mantissa in [1, 2), scalar integer datapath
    # ------------------------------------------------------------------
    def ln_mantissa_code(self, w_code: int) -> int:
        """``ln(w)`` for mantissa code ``w_code`` (value ``w_code * 2**-F``).

        ``w_code`` must represent a value in ``[1, 2)``.  Returns the log
        on the same fixed-point grid.
        """
        one = 1 << self.frac_bits
        if not one <= w_code < 2 * one:
            raise ConfigurationError(
                f"mantissa code {w_code} not in [1, 2) at {self.frac_bits} frac bits"
            )
        x = w_code + one
        y = w_code - one
        z = 0
        for shift, const in zip(self.schedule, self.atanh_table):
            if y < 0:
                x, y, z = x + (y >> shift), y + (x >> shift), z - const
            else:
                x, y, z = x - (y >> shift), y - (x >> shift), z + const
        return 2 * z

    # ------------------------------------------------------------------
    # Full range reduction: ln(m * 2**-Bu)
    # ------------------------------------------------------------------
    def ln_uniform_code(self, m: int, input_bits: int) -> int:
        """``ln(m * 2**-input_bits)`` for ``m in {1, ..., 2**input_bits}``.

        Returns the (non-positive) log on the internal grid.  ``m`` equal
        to ``2**input_bits`` maps exactly to 0.
        """
        if not 1 <= m <= (1 << input_bits):
            raise ConfigurationError(f"code {m} outside 1..2**{input_bits}")
        j = m.bit_length() - 1
        if m == (1 << j):
            ln_frac = 0  # exact power of two: mantissa is exactly 1
        else:
            # Mantissa w = m * 2**-j in (1, 2); place it on the datapath grid.
            if j >= self.frac_bits:
                w_code = m >> (j - self.frac_bits)
            else:
                w_code = m << (self.frac_bits - j)
            ln_frac = self.ln_mantissa_code(w_code)
        return ln_frac + (j - input_bits) * self.ln2

    def ln_uniform(self, m: int, input_bits: int) -> float:
        """Float value of :meth:`ln_uniform_code` (code * step)."""
        return self.ln_uniform_code(m, input_bits) * 2.0 ** (-self.frac_bits)

    # ------------------------------------------------------------------
    # Vectorized evaluation (bit-identical to the scalar path)
    # ------------------------------------------------------------------
    def ln_uniform_codes(self, m: np.ndarray, input_bits: int) -> np.ndarray:
        """Vectorized :meth:`ln_uniform_code` over an int64 code array."""
        m = np.asarray(m, dtype=np.int64)
        if np.any((m < 1) | (m > (1 << input_bits))):
            raise ConfigurationError("codes outside the URNG alphabet")
        one = np.int64(1 << self.frac_bits)
        # Exponent j = floor(log2(m)); bit_length via frexp-free integer math.
        j = np.zeros_like(m)
        tmp = m.copy()
        for shift in (32, 16, 8, 4, 2, 1):
            mask = tmp >= (np.int64(1) << np.int64(shift))
            j[mask] += shift
            tmp[mask] >>= shift
        # Mantissa codes on the datapath grid.
        up = self.frac_bits - j
        w = np.where(up >= 0, m << np.maximum(up, 0), m >> np.maximum(-up, 0))
        is_pow2 = w == one
        x = w + one
        y = w - one
        z = np.zeros_like(m)
        for shift, const in zip(self.schedule, self.atanh_table):
            neg = y < 0
            dx = np.where(neg, y >> shift, -(y >> shift))
            dy = np.where(neg, x >> shift, -(x >> shift))
            dz = np.where(neg, -const, const)
            x, y, z = x + dx, y + dy, z + dz
        ln_frac = np.where(is_pow2, np.int64(0), 2 * z)
        return ln_frac + (j - input_bits) * np.int64(self.ln2)

    # ------------------------------------------------------------------
    # Accuracy introspection
    # ------------------------------------------------------------------
    def max_abs_error(self, input_bits: int, sample_every: int = 1) -> float:
        """Worst absolute error vs ``math.log`` over the code alphabet.

        ``sample_every`` thins the sweep for large ``input_bits``.
        """
        codes = np.arange(1, (1 << input_bits) + 1, sample_every, dtype=np.int64)
        approx = self.ln_uniform_codes(codes, input_bits) * 2.0 ** (-self.frac_bits)
        exact = np.log(codes * 2.0 ** (-input_bits))
        return float(np.max(np.abs(approx - exact)))
