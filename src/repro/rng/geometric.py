"""Two-sided geometric (discrete Laplace) noise on fixed point.

The discrete-DP literature's answer to the paper's floating/fixed-point
problem is to make the *distribution itself* discrete: two-sided
geometric noise ``Pr[n = k·Δ] ∝ α^{|k|}`` with ``α = e^{-ε·Δ/d}`` is
exactly ε-LDP on the integer grid — no continuous ideal to approximate.

This module implements it and makes a sharper version of the paper's
Section III-A4 point: discreteness alone does not save a *finite-entropy*
implementation.  Driven by a ``Bu``-bit URNG through its inverse CDF, the
generator's support is again bounded (the deepest reachable rung is
``~Bu·ln2·d/(ε·Δ)`` steps), so the naive additive mechanism still has
revealing outputs and still needs the paper's guards — all of which our
exact analyzer shows directly (see the tests).

:class:`IdealTwoSidedGeometric` provides the analytic distribution (and a
proof-by-computation that the *ideal* is exactly ε-LDP);
:class:`FxpGeometricRng` is the ``Bu``-bit hardware realization on the
common inversion datapath.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .inversion import FxpInversionRng
from .laplace_fxp import FxpLaplaceConfig
from .pmf import DiscretePMF
from .urng import UniformCodeSource

__all__ = ["IdealTwoSidedGeometric", "FxpGeometricRng", "geometric_alpha"]


def geometric_alpha(d: float, epsilon: float, delta: float) -> float:
    """Decay per grid step for ε-LDP at sensitivity ``d``: ``e^{-ε·Δ/d}``.

    Shifting the input by the full sensitivity (``d/Δ`` steps) changes
    every probability by exactly ``α^{d/Δ} = e^{-ε}``.
    """
    if d <= 0 or epsilon <= 0 or delta <= 0:
        raise ConfigurationError("d, epsilon and delta must be positive")
    return math.exp(-epsilon * delta / d)


@dataclasses.dataclass(frozen=True)
class IdealTwoSidedGeometric:
    """The analytic distribution ``Pr[k] = (1-α)/(1+α)·α^{|k|}``."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")

    def pmf(self, k: np.ndarray) -> np.ndarray:
        """Probability of each integer ``k``."""
        k = np.asarray(k)
        scale = (1.0 - self.alpha) / (1.0 + self.alpha)
        return scale * np.power(self.alpha, np.abs(k))

    def magnitude_tail(self, j: int) -> float:
        """``Pr[|k| >= j]`` (= ``2α^j/(1+α)`` for j >= 1)."""
        if j <= 0:
            return 1.0
        return 2.0 * self.alpha**j / (1.0 + self.alpha)

    def exact_ldp_epsilon(self, shift_steps: int) -> float:
        """Worst log-ratio between the PMF and its ``shift_steps`` shift.

        Analytically ``shift_steps·|ln α|`` — the computation below checks
        it on a wide window (the tests compare both), demonstrating the
        ideal discrete mechanism is *exactly* ε-LDP with no guards.
        """
        if shift_steps < 1:
            raise ConfigurationError("shift_steps must be positive")
        window = np.arange(-50 * shift_steps, 50 * shift_steps + 1)
        p1 = self.pmf(window)
        p2 = self.pmf(window - shift_steps)
        return float(np.max(np.abs(np.log(p1) - np.log(p2))))

    def inverse_magnitude_cdf(self, u: np.ndarray) -> np.ndarray:
        """Smallest ``j`` with ``Pr[|k| <= j] >= u`` (vectorized)."""
        # dplint: allow[DPL002] -- ideal-model quantile: this class is the
        # continuous reference; the fixed-point realization quantizes it
        # in FxpGeometricRng and is certified via exact_pmf enumeration.
        u = np.asarray(u, dtype=float)
        if np.any((u <= 0) | (u > 1)):
            raise ConfigurationError("uniforms must be in (0, 1]")
        one_minus = np.maximum(1.0 - u, np.finfo(float).tiny)
        # dplint: allow[DPL002] -- same ideal-model quantile (see above).
        raw = np.log(one_minus * (1.0 + self.alpha) / 2.0) / math.log(self.alpha)
        return np.maximum(np.ceil(raw) - 1.0, 0.0)


class FxpGeometricRng(FxpInversionRng):
    """``Bu``-bit inverse-CDF realization of the two-sided geometric.

    ``config.delta`` is the grid step; ``config.lam`` is ignored (the
    decay comes from ``ideal.alpha``).  The finite URNG bounds the
    support at the deepest rung one code can reach — the exact PMF makes
    the resulting privacy failure visible to the analyzer.
    """

    def __init__(
        self,
        config: FxpLaplaceConfig,
        ideal: IdealTwoSidedGeometric,
        source: Optional[UniformCodeSource] = None,
    ):
        super().__init__(config, source=source)
        self.ideal = ideal

    def _u_cap(self) -> float:
        return 1.0 - 2.0 ** (-(self.config.input_bits + 1))

    def magnitude_from_uniform(self, u: np.ndarray) -> np.ndarray:
        # dplint: allow[DPL002] -- u is the exactly representable m*2^-Bu
        # code scaling; the privacy analysis enumerates this datapath.
        u = np.minimum(np.asarray(u, dtype=float), self._u_cap())
        return self.ideal.inverse_magnitude_cdf(u) * self.config.delta

    @property
    def max_magnitude_real(self) -> float:
        return float(
            self.ideal.inverse_magnitude_cdf(np.asarray([self._u_cap()]))[0]
            * self.config.delta
        )

    def ideal_pmf_window(self) -> DiscretePMF:
        """The analytic PMF on the realization's support window."""
        top = self.top_code
        ks = np.arange(-top, top + 1)
        probs = self.ideal.pmf(ks)
        # Fold the (tiny) ideal tail beyond the window into the edges so
        # the comparison PMF is proper.
        tail = self.ideal.magnitude_tail(top + 1) / 2.0
        probs[0] += tail
        probs[-1] += tail
        return DiscretePMF(self.config.delta, -top, probs)
