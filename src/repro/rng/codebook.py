"""Codebook sampling kernel: precomputed code→noise tables with a cache.

The fixed-point Laplace datapath is a *finite* function of the URNG code:
there are only ``2**Bu`` possible uniform codes (paper Section III-A2,
eq. 11), so the whole logarithm datapath — float log, CORDIC iterations,
or piecewise polynomials — collapses into a table ``m → k`` of magnitude
codes that can be computed once and gathered forever.  This is exactly
the hardware LUT option the paper discusses and the table-based RNG
idiom of the stochastic-computing literature (SNIPPETS.md, UnarySim).

This module owns that table machinery:

* :class:`CodebookEntry` — one precomputed ``m → k`` table for a
  ``(FxpLaplaceConfig, log backend)`` pair, bit-identical to the live
  datapath *by construction* (it is built by sweeping every code through
  the live datapath — the same sweep the exact-PMF enumeration performs).
  The entry also carries the magnitude counts and the exact signed PMF
  derived from the same table, so distribution analysis and sampling
  provably share one source of truth.
* :class:`CodebookCache` — a process-wide keyed LRU cache of entries.
  Repeated mechanism constructions across benchmarks, fleet devices and
  the DP-Box FSM share one table instead of re-enumerating the alphabet.
* a **table budget**: configurations whose alphabet would exceed
  ``table_budget_bytes`` are not tabulated; callers fall back to the
  live datapath (kernel ``"live"`` instead of ``"codebook"``).

Gathering from a codebook is *audited randomness* in the dplint sense
(rule DPL001): the table is a deterministic function of the
configuration, and every random bit still comes from the injected
:class:`~repro.rng.urng.UniformCodeSource`.  See ``docs/performance.md``
for the kernel/budget/cache-key contract and the benchmark format.
"""

from __future__ import annotations

import collections
import threading
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "CodebookEntry",
    "CodebookCache",
    "codebook_cache",
    "configure_codebooks",
    "backend_fingerprint",
    "DEFAULT_TABLE_BUDGET_BYTES",
    "DEFAULT_MAX_ENTRIES",
]

#: Largest single ``m → k`` table the cache will build (8 MiB covers the
#: paper's running example ``Bu = 17`` ~60x over and every configuration
#: up to ``Bu = 21`` at int32).  Beyond it the live datapath is used.
DEFAULT_TABLE_BUDGET_BYTES = 8 << 20

#: Default number of distinct configurations kept (LRU beyond this).
DEFAULT_MAX_ENTRIES = 16


def backend_fingerprint(log_backend) -> Tuple:
    """Hashable identity of a logarithm backend for cache keying.

    ``None`` (the exact float64 log) keys as ``("exact-f64",)``.  Hardware
    backends expose a ``fingerprint`` property covering every parameter
    that affects their output.  Unknown backends without one key by object
    identity — correct (no false sharing) but only shared per instance.
    """
    if log_backend is None:
        return ("exact-f64",)
    fp = getattr(log_backend, "fingerprint", None)
    if fp is not None:
        return tuple(fp)
    return (type(log_backend).__qualname__, "id", id(log_backend))


class CodebookEntry:
    """One precomputed magnitude-code table plus derived exact artifacts."""

    def __init__(self, key: Tuple, delta: float, input_bits: int, top_code: int,
                 table: np.ndarray):
        self.key = key
        self.delta = delta
        self.input_bits = input_bits
        self.top_code = top_code
        #: ``table[m - 1]`` is the magnitude code for URNG code ``m``.
        self.table = table
        self._counts: Optional[np.ndarray] = None
        self._signed: Optional[np.ndarray] = None
        #: Exact signed PMF; populated lazily by ``FxpLaplaceRng.exact_pmf``
        #: so the PMF math stays in one place (laplace_fxp).
        self.pmf = None
        self._lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        """Memory footprint of the gather table."""
        return int(self.table.nbytes)

    def gather(self, m: np.ndarray) -> np.ndarray:
        """Magnitude codes for URNG codes ``m`` — one vectorized gather."""
        return self.table[m - 1]

    def signed_table(self) -> np.ndarray:
        """Flat int64 table indexed by ``(b << Bu) + m`` → signed code.

        Slot ``m`` (``1 .. 2**Bu``) holds ``+table[m - 1]`` and slot
        ``2**Bu + m`` holds ``-table[m - 1]`` (slot 0 is padding), so
        ``signed_table()[(b << Bu) + m]`` is ``(1 - 2b) · table[m - 1]``
        in a *single* gather — both the sign multiply *and* the ``m - 1``
        index shift of the unfused path folded into the lookup.  Built
        lazily (adds a ``2**(Bu+1)`` int64 table only when a fused caller
        exists) and cached for the life of the entry.
        """
        with self._lock:
            if self._signed is None:
                magnitudes = self.table.astype(np.int64)
                self._signed = np.concatenate(([0], magnitudes, -magnitudes))
            return self._signed

    def gather_signed_add(
        self, m: np.ndarray, sign_bits: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Fused ``codes + (1 - 2·sign_bits) · table[m - 1]``.

        One signed gather plus one in-place add replaces the unfused
        gather → ``2b`` → ``1 - …`` → ``sign·k`` → ``+ codes`` chain.
        Inputs are never mutated; the result is a fresh int64 buffer the
        caller owns (the guards mutate it in place).
        """
        idx = sign_bits << self.input_bits
        idx += m
        out = self.signed_table()[idx]
        out += codes
        return out

    def magnitude_counts(self) -> np.ndarray:
        """Exact counts of URNG codes per magnitude code (cached)."""
        with self._lock:
            if self._counts is None:
                self._counts = np.bincount(
                    self.table, minlength=self.top_code + 1
                )
            return self._counts


class CodebookCache:
    """Process-wide keyed LRU cache of :class:`CodebookEntry` objects.

    Keys are ``(FxpLaplaceConfig, backend_fingerprint)`` — everything the
    table contents depend on and nothing they don't (in particular not
    the uniform source, which only feeds indices into the gather).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        table_budget_bytes: int = DEFAULT_TABLE_BUDGET_BYTES,
    ):
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        if table_budget_bytes < 1:
            raise ConfigurationError("table_budget_bytes must be >= 1")
        self.max_entries = max_entries
        self.table_budget_bytes = table_budget_bytes
        self._entries: "collections.OrderedDict[Tuple, CodebookEntry]" = (
            collections.OrderedDict()
        )
        self._lock = threading.RLock()
        # Statistics (monotone counters; surfaced by `python -m repro kernels`).
        self.hits = 0
        self.builds = 0
        self.evictions = 0
        self.budget_fallbacks = 0
        self.installs = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _table_dtype(top_code: int):
        return np.int32 if top_code < (1 << 31) else np.int64

    def planned_bytes(self, config) -> int:
        """Bytes the table for ``config`` would occupy."""
        itemsize = np.dtype(self._table_dtype(config.top_code)).itemsize
        return (1 << config.input_bits) * itemsize

    def fits_budget(self, config) -> bool:
        """Whether ``config``'s alphabet fits the per-table budget."""
        return self.planned_bytes(config) <= self.table_budget_bytes

    # ------------------------------------------------------------------
    def get(
        self,
        config,
        log_backend,
        build: Callable[[np.ndarray], np.ndarray],
    ) -> Optional[CodebookEntry]:
        """Fetch (or build) the codebook for a config/backend pair.

        ``build`` maps the full URNG code vector ``1..2**Bu`` to magnitude
        codes — i.e. the *live* datapath — and is only invoked on a cache
        miss.  Returns ``None`` when the table would exceed the budget;
        the caller must then keep using the live datapath.
        """
        if not self.fits_budget(config):
            with self._lock:
                self.budget_fallbacks += 1
            return None
        key = (config, backend_fingerprint(log_backend))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
        # Build outside the lock: enumeration can take milliseconds and
        # must not serialize unrelated lookups.  A racing duplicate build
        # is harmless (identical contents); last writer wins.
        m = np.arange(1, (1 << config.input_bits) + 1, dtype=np.int64)
        table = np.asarray(build(m))
        dtype = self._table_dtype(config.top_code)
        entry = CodebookEntry(
            key=key,
            delta=config.delta,
            input_bits=config.input_bits,
            top_code=config.top_code,
            table=np.ascontiguousarray(table, dtype=dtype),
        )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return existing
            self.builds += 1
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def peek(self, config, log_backend) -> Optional[CodebookEntry]:
        """Return the cached entry without building (and without LRU touch)."""
        return self._entries.get((config, backend_fingerprint(log_backend)))

    def install(self, config, fingerprint: Tuple, table: np.ndarray) -> CodebookEntry:
        """Adopt a pre-built ``m → k`` table (sharded-fleet codebook shipping).

        A worker process warms its cache from a table the coordinator
        already built, instead of re-sweeping the alphabet per process —
        the table is a deterministic function of ``(config, backend)``,
        so adopting it is exactly as audited as building it.
        ``fingerprint`` must be the coordinator-side
        :func:`backend_fingerprint` of the backend the table was built
        with.  An entry already resident under that key wins (identical
        contents by construction).  Install ignores the table budget:
        the coordinator only ships entries it was allowed to build.
        """
        if table.shape != ((1 << config.input_bits),):
            raise ConfigurationError(
                f"shipped table has shape {table.shape}, expected "
                f"({1 << config.input_bits},) for Bu={config.input_bits}"
            )
        key = (config, tuple(fingerprint))
        entry = CodebookEntry(
            key=key,
            delta=config.delta,
            input_bits=config.input_bits,
            top_code=config.top_code,
            table=np.ascontiguousarray(table, dtype=self._table_dtype(config.top_code)),
        )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self.installs += 1
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Bytes held by all resident tables."""
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def stats(self) -> Dict[str, object]:
        """Cache statistics snapshot (JSON-ready).

        ``hits + builds + budget_fallbacks`` equals the number of
        :meth:`get` calls — the reconciliation the unit tests assert.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "builds": self.builds,
                "evictions": self.evictions,
                "budget_fallbacks": self.budget_fallbacks,
                "installs": self.installs,
                "bytes": sum(e.nbytes for e in self._entries.values()),
                "max_entries": self.max_entries,
                "table_budget_bytes": self.table_budget_bytes,
            }

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.builds = 0
            self.evictions = 0
            self.budget_fallbacks = 0
            self.installs = 0


# ---------------------------------------------------------------------
# The process-wide cache.  Every FxpLaplaceRng resolves its kernel here
# unless constructed with kernel="live".
_CACHE = CodebookCache()


def codebook_cache() -> CodebookCache:
    """The shared process-wide codebook cache."""
    return _CACHE


def configure_codebooks(
    max_entries: Optional[int] = None,
    table_budget_bytes: Optional[int] = None,
) -> CodebookCache:
    """Adjust the process-wide cache limits (returns the cache).

    Shrinking ``max_entries`` evicts immediately (LRU order); changing
    the table budget only affects future :meth:`CodebookCache.get` calls
    — RNGs already holding an entry keep it.
    """
    with _CACHE._lock:
        if max_entries is not None:
            if max_entries < 1:
                raise ConfigurationError("max_entries must be >= 1")
            _CACHE.max_entries = max_entries
            while len(_CACHE._entries) > max_entries:
                _CACHE._entries.popitem(last=False)
                _CACHE.evictions += 1
        if table_budget_bytes is not None:
            if table_budget_bytes < 1:
                raise ConfigurationError("table_budget_bytes must be >= 1")
            _CACHE.table_budget_bytes = table_budget_bytes
    return _CACHE
