"""Gaussian noise on fixed point (the (ε, δ)-DP alternative).

Section III-A4 lists the Gaussian alongside Laplace and staircase as a
DP-guaranteeing distribution that finite-precision hardware cannot
realize exactly.  The Gaussian mechanism provides (ε, δ)-DP — not pure
ε-DP — with ``σ = d·sqrt(2·ln(1.25/δ))/ε`` (the classic calibration for
ε ≤ 1), so it is the right comparison point when a small failure
probability δ is acceptable.

The probit (inverse normal CDF) has no closed form; hardware uses a
rational approximation, which we model with Acklam's algorithm evaluated
in float64 — the quantization effects under study come from the ``Bu``-bit
input and ``Δ`` output grids, exactly as for Laplace.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .inversion import FxpInversionRng
from .laplace_fxp import FxpLaplaceConfig
from .urng import UniformCodeSource

__all__ = ["FxpGaussianRng", "gaussian_sigma", "probit"]


def gaussian_sigma(d: float, epsilon: float, delta: float) -> float:
    """Classic Gaussian-mechanism calibration ``σ = d·√(2·ln(1.25/δ))/ε``."""
    if d <= 0 or epsilon <= 0:
        raise ConfigurationError("d and epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError("delta must be in (0, 1)")
    return d * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


# Acklam's rational approximation of the standard normal quantile.
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425


def probit(p: np.ndarray) -> np.ndarray:
    """Standard normal quantile via Acklam's rational approximation.

    Accurate to ~1.15e-9 relative over (0, 1) — far below the fixed-point
    grids under study, and representative of a hardware rational unit.
    """
    p = np.asarray(p, dtype=float)
    if np.any((p <= 0.0) | (p >= 1.0)):
        raise ConfigurationError("probit arguments must be in (0, 1)")
    out = np.empty_like(p)
    low = p < _P_LOW
    high = p > 1.0 - _P_LOW
    mid = ~(low | high)
    if np.any(mid):
        q = p[mid] - 0.5
        r = q * q
        num = ((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]
        den = (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r) + 1.0
        out[mid] = q * num / den
    if np.any(low):
        q = np.sqrt(-2.0 * np.log(p[low]))
        num = ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        den = ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q) + 1.0
        out[low] = num / den
    if np.any(high):
        q = np.sqrt(-2.0 * np.log(1.0 - p[high]))
        num = ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        den = ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q) + 1.0
        out[high] = -num / den
    return out


class FxpGaussianRng(FxpInversionRng):
    """Fixed-point Gaussian noise generator (scale ``sigma``)."""

    def __init__(
        self,
        config: FxpLaplaceConfig,
        sigma: float,
        source: Optional[UniformCodeSource] = None,
    ):
        if sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        super().__init__(config, source=source)
        self.sigma = sigma

    def _u_cap(self) -> float:
        """Largest uniform distinguishable from 1 on the datapath."""
        return 1.0 - 2.0 ** (-(self.config.input_bits + 1))

    def magnitude_from_uniform(self, u: np.ndarray) -> np.ndarray:
        # dplint: allow[DPL002] -- float64 probit models the hardware's
        # rational approximation (module docstring); the quantization
        # under study is the Bu-bit input / Δ output grid around it.
        u = np.minimum(np.asarray(u, dtype=float), self._u_cap())
        # Magnitude quantile: |N(0, σ)| has CDF 2Φ(m/σ) - 1.
        return self.sigma * probit((1.0 + u) / 2.0)

    @property
    def max_magnitude_real(self) -> float:
        return float(
            self.sigma * probit(np.asarray([(1.0 + self._u_cap()) / 2.0]))[0]
        )
