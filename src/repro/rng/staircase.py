"""Staircase noise distribution (Geng & Viswanath) on fixed point.

The staircase mechanism is the ℓ1-optimal ε-DP additive noise (the paper
cites it alongside Laplace and Gaussian in Sections II-A and III-A4).
Its density is piecewise constant over rungs of width equal to the
sensitivity ``d``::

    f(x) = a(γ)·e^{-kε}           for |x| ∈ [k·d, (k+γ)·d)
    f(x) = a(γ)·e^{-(k+1)ε}       for |x| ∈ [(k+γ)·d, (k+1)·d)
    a(γ) = (1-e^{-ε}) / (2d·(γ + e^{-ε}(1-γ)))

with the ℓ1-optimal rung split ``γ* = 1/(1 + e^{ε/2})``.

The inverse CDF is closed-form (a geometric rung pick plus a linear
position within the rung), so the hardware realization is the same
log + compare + multiply structure as the Laplace unit; on fixed point it
exhibits the same bounded-support/hole pathology, and the same guards
restore LDP — our exact analyzer proves both (see the tests and the
noise-distribution ablation bench).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .inversion import FxpInversionRng
from .laplace_fxp import FxpLaplaceConfig
from .urng import UniformCodeSource

__all__ = ["StaircaseParams", "FxpStaircaseRng", "optimal_gamma"]


def optimal_gamma(epsilon: float) -> float:
    """The ℓ1-optimal rung split ``γ* = 1/(1 + e^{ε/2})``."""
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    return 1.0 / (1.0 + math.exp(epsilon / 2.0))


@dataclasses.dataclass(frozen=True)
class StaircaseParams:
    """Continuous staircase distribution parameters."""

    sensitivity: float  # d — the rung width
    epsilon: float
    gamma: Optional[float] = None  # defaults to the optimal split

    def __post_init__(self) -> None:
        if self.sensitivity <= 0 or self.epsilon <= 0:
            raise ConfigurationError("sensitivity and epsilon must be positive")
        g = self.gamma if self.gamma is not None else optimal_gamma(self.epsilon)
        if not 0.0 < g < 1.0:
            raise ConfigurationError("gamma must be in (0, 1)")
        object.__setattr__(self, "gamma", g)

    @property
    def b(self) -> float:
        """Per-rung decay ``e^{-ε}``."""
        return math.exp(-self.epsilon)

    @property
    def density_scale(self) -> float:
        """The ``a(γ)`` normalization constant."""
        g = self.gamma
        return (1.0 - self.b) / (
            2.0 * self.sensitivity * (g + self.b * (1.0 - g))
        )

    # ------------------------------------------------------------------
    def inverse_half_cdf(self, u: np.ndarray) -> np.ndarray:
        """Magnitude quantile function for ``u`` in (0, 1].

        The magnitude mass of rung ``k`` is ``(1-b)·b^k``; within the
        rung, the inner ``γ·d`` and outer ``(1-γ)·d`` pieces split it in
        proportion ``γ : b(1-γ)``.
        """
        # dplint: allow[DPL002] -- ideal-model quantile: StaircaseParams is
        # the continuous staircase reference; the Bu-bit realization in
        # FxpStaircaseRng is certified via exact_pmf enumeration.
        u = np.asarray(u, dtype=float)
        if np.any((u <= 0) | (u > 1)):
            raise ConfigurationError("uniforms must be in (0, 1]")
        # dplint: allow[DPL002] -- same ideal-model quantile (see above).
        b, g, d = self.b, float(self.gamma), self.sensitivity
        # Rung index: 1 - b^k <= u  =>  k = floor(ln(1-u)/ln b); clamp the
        # u -> 1 endpoint to the last fully-representable rung.
        one_minus = np.maximum(1.0 - u, np.finfo(float).tiny)
        # dplint: allow[DPL002] -- same ideal-model quantile (see above).
        k = np.floor(np.log(one_minus) / math.log(b))
        k = np.maximum(k, 0.0)
        # dplint: allow[DPL002] -- same ideal-model quantile (see above).
        residual = u - (1.0 - np.power(b, k))  # in [0, (1-b)·b^k)
        # dplint: allow[DPL002] -- same ideal-model quantile (see above).
        rung_mass = (1.0 - b) * np.power(b, k)
        inner_frac = g / (g + b * (1.0 - g))
        inner_mass = rung_mass * inner_frac
        inside = residual < inner_mass
        with np.errstate(divide="ignore", invalid="ignore"):
            pos_inner = np.where(
                inner_mass > 0, residual / np.where(inner_mass > 0, inner_mass, 1), 0.0
            )
            outer_mass = rung_mass - inner_mass
            pos_outer = np.where(
                outer_mass > 0,
                (residual - inner_mass) / np.where(outer_mass > 0, outer_mass, 1),
                0.0,
            )
        m = np.where(
            inside,
            k * d + pos_inner * g * d,
            k * d + g * d + pos_outer * (1.0 - g) * d,
        )
        return m


class FxpStaircaseRng(FxpInversionRng):
    """Fixed-point staircase noise generator."""

    def __init__(
        self,
        config: FxpLaplaceConfig,
        params: StaircaseParams,
        source: Optional[UniformCodeSource] = None,
    ):
        super().__init__(config, source=source)
        self.params = params

    def _u_cap(self) -> float:
        """Largest uniform the datapath can distinguish from 1.

        The hardware computes ``log(1-u)`` on ``Bu+1`` fractional bits; a
        ``1-u`` smaller than one LSB is indistinguishable from it, which
        is exactly the finite-precision effect that bounds the support
        (the staircase analogue of Laplace's ``L = λ·Bu·ln2``).
        """
        return 1.0 - 2.0 ** (-(self.config.input_bits + 1))

    def magnitude_from_uniform(self, u: np.ndarray) -> np.ndarray:
        return self.params.inverse_half_cdf(np.minimum(u, self._u_cap()))

    @property
    def max_magnitude_real(self) -> float:
        """Magnitude of the clamped all-ones code: rung ``~(Bu+1)·ln2/ε``."""
        return float(
            self.params.inverse_half_cdf(np.asarray([self._u_cap()]))[0]
        )
