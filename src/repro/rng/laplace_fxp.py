"""Fixed-point Laplace random number generator (paper Section III-A2).

This models the RNG block of Fig. 3: a ``Bu``-bit uniform code ``m`` is
mapped through the inverse half-CDF ``-λ·ln(m·2**-Bu)``, rounded to the
nearest multiple of the output quantization step ``Δ``, saturated into the
``By``-bit two's-complement output range, and given a random sign.

Two properties make this RNG the villain of the paper:

* its support is **bounded** by ``L = λ·Bu·ln(2)`` (the largest magnitude,
  reached at ``m = 1``), and
* its tail has **holes**: once the ideal bin probability drops below one
  URNG code (``2**-Bu``), some output values receive zero probability.

Both are captured exactly by :meth:`FxpLaplaceRng.exact_pmf`, which either
enumerates the full URNG alphabet (default; exact for *any* logarithm
back-end, including CORDIC) or applies the analytic counting formula of
paper eq. (11).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError
from .codebook import CodebookEntry, codebook_cache
from .cordic import CordicLn
from .log_approx import PiecewisePolyLn
from .pmf import DiscretePMF
from .urng import NumpySource, UniformCodeSource

__all__ = ["FxpLaplaceConfig", "FxpLaplaceRng"]

LogBackend = Union[None, CordicLn, PiecewisePolyLn]


@dataclasses.dataclass(frozen=True)
class FxpLaplaceConfig:
    """Static parameters of the fixed-point Laplace RNG.

    Parameters
    ----------
    input_bits:
        ``Bu`` — width of the uniform code (paper's URNG output bits).
    output_bits:
        ``By`` — width of the signed output; magnitudes saturate at
        ``2**(By-1) - 1`` steps.
    delta:
        ``Δ`` — output quantization step, in real units.
    lam:
        ``λ`` — Laplace scale.  For an ε-LDP mechanism over a sensor range
        of length ``d``, ``λ = d/ε``.
    """

    input_bits: int
    output_bits: int
    delta: float
    lam: float

    def __post_init__(self) -> None:
        if not 2 <= self.input_bits <= 40:
            raise ConfigurationError("input_bits must be in 2..40")
        if not 2 <= self.output_bits <= 40:
            raise ConfigurationError("output_bits must be in 2..40")
        if self.delta <= 0:
            raise ConfigurationError("delta must be positive")
        if self.lam <= 0:
            raise ConfigurationError("lam must be positive")

    # ------------------------------------------------------------------
    @property
    def max_code(self) -> int:
        """Largest magnitude code representable: ``2**(By-1) - 1``."""
        return (1 << (self.output_bits - 1)) - 1

    @property
    def max_magnitude_real(self) -> float:
        """``L = λ·Bu·ln2`` — the largest magnitude before rounding."""
        return self.lam * self.input_bits * math.log(2.0)

    @property
    def top_code(self) -> int:
        """Largest code the RNG actually emits (after rounding, saturated)."""
        unsat = int(math.floor(self.max_magnitude_real / self.delta + 0.5))
        return min(unsat, self.max_code)

    @property
    def saturates(self) -> bool:
        """True when ``By`` is too small to represent the full support."""
        return int(math.floor(self.max_magnitude_real / self.delta + 0.5)) > self.max_code

    @classmethod
    def for_mechanism(
        cls,
        sensor_range: float,
        epsilon: float,
        input_bits: int = 17,
        output_bits: int = 12,
        delta: Optional[float] = None,
    ) -> "FxpLaplaceConfig":
        """Convenience constructor: ``λ = d/ε``; Δ defaults to ``d/2**5``.

        The default Δ matches the paper's running example
        (``Δ = 10/2**5`` for a range of 10).
        """
        if sensor_range <= 0:
            raise ConfigurationError("sensor_range must be positive")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if delta is None:
            delta = sensor_range / 32.0
        return cls(
            input_bits=input_bits,
            output_bits=output_bits,
            delta=delta,
            lam=sensor_range / epsilon,
        )


class FxpLaplaceRng:
    """Sampler + exact distribution of the fixed-point Laplace RNG.

    ``kernel`` selects the sampling implementation:

    * ``"auto"`` (default) — gather from a precomputed ``m → k`` codebook
      shared process-wide (see :mod:`repro.rng.codebook`) when the
      alphabet fits the table budget, else the live datapath;
    * ``"codebook"`` — require the codebook (raises if over budget);
    * ``"live"`` — always recompute the logarithm datapath per draw (the
      pre-codebook behaviour; the bit-identity reference).

    Both kernels consume the uniform source identically (``n`` codes,
    then ``n`` sign bits), so for any fixed source/seed the output stream
    is bit-identical regardless of kernel — the codebook is built by
    sweeping every code through the live datapath.
    """

    def __init__(
        self,
        config: FxpLaplaceConfig,
        source: Optional[UniformCodeSource] = None,
        log_backend: LogBackend = None,
        kernel: str = "auto",
    ):
        if kernel not in ("auto", "codebook", "live"):
            raise ConfigurationError(
                f"kernel must be 'auto', 'codebook' or 'live', got {kernel!r}"
            )
        self.config = config
        self.source = source if source is not None else NumpySource()
        #: ``None`` means an exact float64 logarithm; otherwise a hardware
        #: logarithm model (CORDIC or piecewise polynomial).
        self.log_backend = log_backend
        self.kernel_mode = kernel
        self._codebook: Optional[CodebookEntry] = None
        self._codebook_resolved = False
        #: Instance-local PMF fallback, used only when no codebook entry
        #: exists (live kernel / over-budget alphabet).
        self._pmf_cache: Optional[DiscretePMF] = None

    # ------------------------------------------------------------------
    # Internal: logarithm of the uniform codes
    # ------------------------------------------------------------------
    def _ln_uniform(self, m: np.ndarray) -> np.ndarray:
        bu = self.config.input_bits
        if self.log_backend is None:
            # dplint: allow[DPL002] -- models the exact-log datapath the
            # analytic eq.-(11) counts assume; hardware backends below
            # (CordicLn / PiecewisePolyLn) run on integer codes.
            return np.log(m.astype(float)) - bu * math.log(2.0)
        codes = self.log_backend.ln_uniform_codes(m, bu)
        return codes * 2.0 ** (-self.log_backend.frac_bits)

    def _codes_from_uniform(self, m: np.ndarray) -> np.ndarray:
        """Magnitude codes (nonnegative ints) for URNG codes ``m``."""
        magnitude = -self.config.lam * self._ln_uniform(m)
        k = np.floor(magnitude / self.config.delta + 0.5).astype(np.int64)
        return np.minimum(k, self.config.max_code)

    # ------------------------------------------------------------------
    # Kernel resolution (codebook vs live datapath)
    # ------------------------------------------------------------------
    def _resolve_codebook(self) -> Optional[CodebookEntry]:
        """The shared codebook entry, or ``None`` for the live datapath."""
        if not self._codebook_resolved:
            if self.kernel_mode != "live":
                self._codebook = codebook_cache().get(
                    self.config, self.log_backend, self._codes_from_uniform
                )
                if self._codebook is None and self.kernel_mode == "codebook":
                    raise ConfigurationError(
                        f"codebook kernel requested but the 2**{self.config.input_bits}"
                        "-entry table exceeds the table budget; raise it via "
                        "repro.rng.codebook.configure_codebooks or use kernel='auto'"
                    )
            self._codebook_resolved = True
        return self._codebook

    @property
    def kernel(self) -> str:
        """The sampling kernel actually in use: ``codebook`` or ``live``."""
        return "codebook" if self._resolve_codebook() is not None else "live"

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_codes(self, n: int) -> np.ndarray:
        """Draw ``n`` signed output codes ``k`` (noise value is ``k·Δ``)."""
        m = self.source.uniform_codes(n, self.config.input_bits)
        entry = self._resolve_codebook()
        # Codebook gather and live datapath agree bit-for-bit: the table
        # *is* the live datapath, evaluated once over the whole alphabet.
        k = entry.gather(m) if entry is not None else self._codes_from_uniform(m)
        sign = 1 - 2 * self.source.random_bits(n)  # ±1
        return sign * k

    def sample_codes_add(self, codes: np.ndarray) -> np.ndarray:
        """Fused ``codes + sample_codes(len(codes))`` — same stream, fewer passes.

        The unfused draw-then-add spends three elementwise round-trips on
        the sign alone (``2*b``, ``1 - …``, ``sign*k``) plus a fourth for
        the add.  On the codebook path the sign multiply folds into the
        lookup itself: a doubled ``[+k…, -k…]`` table indexed by
        ``(sign_bit << Bu) | (m - 1)`` yields the *signed* code in one
        gather (see :meth:`CodebookEntry.gather_signed_add`), leaving a
        single in-place add for the input codes.  The live datapath keeps
        the arithmetic form ``codes + k - 2·b·k`` with in-place updates.

        Source consumption is *identical* to :meth:`sample_codes` (``n``
        uniform codes, then ``n`` sign bits), so the result is
        bit-identical to ``codes + sample_codes(n)`` for any source/seed;
        the guard-fusion property tests pin that against the scalar
        reference.

        ``codes`` must be integer grid codes (every fixed-point arm's
        quantizer emits ``int64``); the fused buffer is ``int64``.
        """
        codes = np.asarray(codes)
        n = codes.shape[0]
        m = self.source.uniform_codes(n, self.config.input_bits)
        entry = self._resolve_codebook()
        sign_bits = self.source.random_bits(n)
        if entry is not None:
            return entry.gather_signed_add(m, sign_bits, codes)
        k = self._codes_from_uniform(m)  # fresh int64 — safe to mutate
        signed_twice = k * sign_bits
        k += codes
        k -= signed_twice
        k -= signed_twice
        return k

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` noise values in real units."""
        return self.sample_codes(n) * self.config.delta

    # ------------------------------------------------------------------
    # Exact distribution
    # ------------------------------------------------------------------
    def exact_pmf(self, method: str = "enumerate") -> DiscretePMF:
        """Exact signed PMF of the RNG output.

        ``method="enumerate"`` sweeps every URNG code through the *actual*
        sampling datapath (valid for any log back-end).
        ``method="analytic"`` applies paper eq. (11) (exact-log datapath
        only).
        """
        if method == "enumerate":
            entry = self._resolve_codebook()
            if entry is not None:
                # Shared process-wide: the PMF lives on the cache entry, so
                # every RNG/mechanism with this config computes it once.
                if entry.pmf is None:
                    entry.pmf = self._signed_from_magnitude(
                        entry.magnitude_counts()
                    )
                return entry.pmf
            if self._pmf_cache is None:
                self._pmf_cache = self._pmf_enumerate()
            return self._pmf_cache
        if method == "analytic":
            if self.log_backend is not None:
                raise ConfigurationError(
                    "eq. (11) describes the exact-log datapath; use enumerate "
                    "for hardware log back-ends"
                )
            return self._pmf_analytic()
        raise ConfigurationError(f"unknown method {method!r}")

    def _magnitude_counts(self) -> np.ndarray:
        """Exact counts of URNG codes mapping to each magnitude code."""
        entry = self._resolve_codebook()
        if entry is not None:
            return entry.magnitude_counts()
        bu = self.config.input_bits
        m = np.arange(1, (1 << bu) + 1, dtype=np.int64)
        k = self._codes_from_uniform(m)
        return np.bincount(k, minlength=self.config.top_code + 1)

    def _analytic_magnitude_counts(self) -> np.ndarray:
        """Counts via eq. (11): integers in ``(m2(k), m1(k)]`` per bin."""
        cfg = self.config
        bu_codes = 1 << cfg.input_bits
        a = cfg.delta / cfg.lam
        log_c = cfg.input_bits * math.log(2.0)
        top = cfg.top_code
        ks = np.arange(0, top + 1, dtype=float)
        # m1/m2 are the URNG codes at the bin edges k ∓ 1/2; clamp the
        # upper edge of bin 0 to the full alphabet.
        m1 = np.exp(log_c - a * (ks - 0.5))
        m2 = np.exp(log_c - a * (ks + 0.5))
        m1 = np.minimum(m1, float(bu_codes))
        counts = np.floor(m1) - np.floor(m2)
        counts = np.maximum(counts, 0.0).astype(np.int64)
        # Saturation: codes below the last bin edge all round into top.
        if cfg.saturates:
            counts[top] += int(np.floor(m2[top]))
        # Any telescoping remainder (e.g. m = 1 landing exactly on the last
        # bin edge) belongs to the largest magnitude bin.
        deficit = bu_codes - int(counts.sum())
        counts[top] += deficit
        if counts[top] < 0:
            raise ConfigurationError(
                "analytic counting produced a negative bin; use enumerate"
            )
        return counts

    def _signed_from_magnitude(self, mag_counts: np.ndarray) -> DiscretePMF:
        cfg = self.config
        top = mag_counts.size - 1
        denom = 2 * (1 << cfg.input_bits)
        signed = np.zeros(2 * top + 1, dtype=np.int64)
        signed[top] = 2 * mag_counts[0]  # both signs of zero collapse
        if top > 0:
            signed[top + 1 :] = mag_counts[1:]
            signed[:top] = mag_counts[1:][::-1]
        return DiscretePMF.from_counts(cfg.delta, -top, signed, denom)

    def _pmf_enumerate(self) -> DiscretePMF:
        return self._signed_from_magnitude(self._magnitude_counts())

    def _pmf_analytic(self) -> DiscretePMF:
        return self._signed_from_magnitude(self._analytic_magnitude_counts())

    # ------------------------------------------------------------------
    # Ideal counterpart (for comparison plots)
    # ------------------------------------------------------------------
    def ideal_bin_probs(self) -> DiscretePMF:
        """Ideal ``Lap(λ)`` mass integrated over each output bin.

        This is the distribution an infinitely precise RNG would induce on
        the same grid — the natural yardstick for Fig. 4.
        """
        cfg = self.config
        top = cfg.top_code
        ks = np.arange(-top, top + 1)
        lo = (ks - 0.5) * cfg.delta
        hi = (ks + 0.5) * cfg.delta
        lam = cfg.lam

        def cdf(x: np.ndarray) -> np.ndarray:
            return np.where(x < 0, 0.5 * np.exp(x / lam), 1 - 0.5 * np.exp(-x / lam))

        probs = cdf(hi) - cdf(lo)
        # Fold the ideal tails into the end bins so both PMFs sum to 1.
        probs[0] += cdf(lo[0]) - 0.0
        probs[-1] += 1.0 - cdf(hi[-1])
        return DiscretePMF(cfg.delta, -top, probs)
