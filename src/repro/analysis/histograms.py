"""Histogram utilities for distribution comparison (Figs. 4, 6, 7, 12)."""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng.pmf import DiscretePMF

__all__ = ["GridHistogram", "tail_region", "overlap_fraction"]


@dataclasses.dataclass(frozen=True)
class GridHistogram:
    """Empirical counts of grid-aligned samples (values are ``k·step``)."""

    step: float
    min_k: int
    counts: np.ndarray

    @classmethod
    def from_samples(cls, values: np.ndarray, step: float) -> "GridHistogram":
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ConfigurationError("no samples")
        k = np.round(values / step).astype(np.int64)
        kmin = int(k.min())
        counts = np.bincount(k - kmin)
        return cls(step=step, min_k=kmin, counts=counts)

    @property
    def max_k(self) -> int:
        """Largest populated grid index."""
        return self.min_k + self.counts.size - 1

    def values(self) -> np.ndarray:
        """Real values of the histogram bins."""
        return np.arange(self.min_k, self.max_k + 1) * self.step

    def normalized(self) -> np.ndarray:
        """Counts as probabilities."""
        return self.counts / self.counts.sum()

    def to_pmf(self) -> DiscretePMF:
        """Convert to a :class:`DiscretePMF`."""
        return DiscretePMF(self.step, self.min_k, self.normalized())

    def count_at(self, k: int) -> int:
        """Count of a specific grid index (0 outside the window)."""
        i = k - self.min_k
        if 0 <= i < self.counts.size:
            return int(self.counts[i])
        return 0


def tail_region(
    hist: GridHistogram, tail_fraction: float = 0.02, side: str = "upper"
) -> Tuple[int, int]:
    """Grid-index window containing the requested tail mass.

    This is the "zoom into the region near the tail" of Figs. 4(b)/12(b).
    """
    if not 0 < tail_fraction < 1:
        raise ConfigurationError("tail_fraction must be in (0, 1)")
    probs = hist.normalized()
    if side == "upper":
        cum = np.cumsum(probs[::-1])[::-1]
        idx = np.flatnonzero(cum <= tail_fraction)
        start = int(idx[0]) if idx.size else hist.counts.size - 1
        return hist.min_k + start, hist.max_k
    if side == "lower":
        cum = np.cumsum(probs)
        idx = np.flatnonzero(cum <= tail_fraction)
        end = int(idx[-1]) if idx.size else 0
        return hist.min_k, hist.min_k + end
    raise ConfigurationError("side must be 'upper' or 'lower'")


def overlap_fraction(
    h1: GridHistogram,
    h2: GridHistogram,
    window: Optional[Tuple[int, int]] = None,
) -> float:
    """Fraction of populated bins (within ``window``) populated in *both*.

    The operational reading of Fig. 12(b): bins where only one input has
    counts are outputs that identify the input outright.
    """
    lo = min(h1.min_k, h2.min_k)
    hi = max(h1.max_k, h2.max_k)
    if window is not None:
        lo, hi = window
    ks = np.arange(lo, hi + 1)
    c1 = np.array([h1.count_at(int(k)) for k in ks])
    c2 = np.array([h2.count_at(int(k)) for k in ks])
    populated = (c1 > 0) | (c2 > 0)
    if not populated.any():
        return 1.0
    both = (c1 > 0) & (c2 > 0)
    return float(both.sum() / populated.sum())
