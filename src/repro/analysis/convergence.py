"""Analytic error predictions for aggregate queries under LDP.

These closed forms let experiments assert not just "the error shrinks"
but "the error shrinks like the theory says", and let deployments size
their fleets: how many devices buy a target accuracy at a given ε?

For i.i.d. Laplace noise ``Lap(λ)`` added to N values:

* the mean's error is asymptotically ``N(0, 2λ²/N)`` (CLT), so
  ``E|error| = sqrt(2/π)·sqrt(2λ²/N + Var(x)/N·0)…`` — for the *query
  error* (estimate minus true mean of the same N values) only the noise
  variance enters: ``E|error| = 2λ/sqrt(π·N)``;
* the naive variance estimator is biased by exactly ``+2λ²``;
* randomized response with keep probability p estimates a frequency with
  ``std = sqrt(p(1-p))/((2p-1)·sqrt(N))`` (binomial debiasing).
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "predicted_mean_mae",
    "devices_for_target_mae",
    "variance_bias",
    "predicted_rr_std",
]


def predicted_mean_mae(lam: float, n: int) -> float:
    """Expected |mean-query error| for N Laplace-noised values.

    The estimate's error is the mean of N i.i.d. ``Lap(λ)`` draws; by the
    CLT it is ``≈ N(0, 2λ²/N)``, whose mean absolute value is
    ``sqrt(2/π)·sqrt(2λ²/N) = 2λ/sqrt(π·N)``.
    """
    if lam <= 0 or n < 1:
        raise ConfigurationError("need positive lam and n")
    return 2.0 * lam / math.sqrt(math.pi * n)


def devices_for_target_mae(lam: float, target_mae: float) -> int:
    """Smallest N with ``predicted_mean_mae(λ, N) <= target``."""
    if target_mae <= 0:
        raise ConfigurationError("target must be positive")
    n = (2.0 * lam / target_mae) ** 2 / math.pi
    return max(int(math.ceil(n)), 1)


def variance_bias(lam: float) -> float:
    """Exact bias of the naive variance estimator: ``+2λ²``."""
    if lam <= 0:
        raise ConfigurationError("lam must be positive")
    return 2.0 * lam * lam


def predicted_rr_std(keep_prob: float, n: int) -> float:
    """Std of the debiased randomized-response frequency estimate.

    The observed frequency is binomial-ish with per-bit variance at most
    ``p(1-p)...``; conservatively using the worst case 1/4 understates
    nothing: ``std <= 1/(2·(2p-1)·sqrt(N))``.
    """
    if not 0.5 < keep_prob < 1.0:
        raise ConfigurationError("keep probability must be in (1/2, 1)")
    if n < 1:
        raise ConfigurationError("n must be positive")
    return 0.5 / ((2.0 * keep_prob - 1.0) * math.sqrt(n))
