"""Plain-text table rendering for the benchmark harness.

Every bench prints the same rows/series the paper reports; this module
keeps the formatting in one place so tables line up consistently.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with auto-sized columns."""
    if not headers:
        raise ConfigurationError("need at least one column")
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    title: str = "",
) -> str:
    """A figure-as-table: one x column plus one column per named series.

    ``series`` is a sequence of ``(name, values)`` pairs.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for _, values in series])
    return render_table(headers, rows, title=title)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)
