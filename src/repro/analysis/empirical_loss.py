"""Empirical privacy-loss estimation from samples.

The exact analyzer (:mod:`repro.privacy.loss`) is the ground truth for
discrete mechanisms; this module provides the *empirical* counterpart —
estimate the loss from mechanism outputs alone — which is how one audits
a black-box implementation (and how our integration tests cross-check the
exact analyzer against the actual samplers).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import LocalMechanism
from .histograms import GridHistogram

__all__ = ["EmpiricalLossEstimate", "estimate_pairwise_loss"]


@dataclasses.dataclass(frozen=True)
class EmpiricalLossEstimate:
    """Estimated worst pointwise loss between two inputs."""

    x1: float
    x2: float
    n_samples: int
    #: Max log-ratio over bins where both empirical PMFs are positive.
    max_finite_loss: float
    #: Number of bins populated under exactly one hypothesis — evidence
    #: of infinite loss (certain identification).
    one_sided_bins: int
    #: Mass observed in one-sided bins (the certain-identification rate).
    one_sided_mass: float

    @property
    def suggests_violation(self) -> bool:
        """Heuristic: any one-sided mass suggests the loss is unbounded."""
        return self.one_sided_bins > 0


def estimate_pairwise_loss(
    mechanism: LocalMechanism,
    x1: float,
    x2: float,
    step: float,
    n_samples: int = 50000,
    min_count: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> EmpiricalLossEstimate:
    """Estimate the privacy loss between two inputs by sampling.

    ``min_count`` suppresses ratio noise: bins with fewer than that many
    samples under *both* hypotheses are excluded from the finite-loss
    maximum (they still count toward one-sidedness when the other side is
    well populated).
    """
    if n_samples < 100:
        raise ConfigurationError("need at least 100 samples")
    _ = rng  # randomness lives in the mechanism's own source
    y1 = mechanism.privatize(np.full(n_samples, x1))
    y2 = mechanism.privatize(np.full(n_samples, x2))
    h1 = GridHistogram.from_samples(y1, step)
    h2 = GridHistogram.from_samples(y2, step)
    lo = min(h1.min_k, h2.min_k)
    hi = max(h1.max_k, h2.max_k)
    ks = np.arange(lo, hi + 1)
    c1 = np.array([h1.count_at(int(k)) for k in ks], dtype=float)
    c2 = np.array([h2.count_at(int(k)) for k in ks], dtype=float)
    both = (c1 >= min_count) & (c2 >= min_count)
    if both.any():
        ratios = np.log(c1[both] / c2[both])
        max_loss = float(np.max(np.abs(ratios)))
    else:
        max_loss = 0.0
    # One-sided: solidly populated on one side, empty on the other.
    side1 = (c1 >= min_count) & (c2 == 0)
    side2 = (c2 >= min_count) & (c1 == 0)
    one_sided = int(side1.sum() + side2.sum())
    mass = float(c1[side1].sum() / n_samples + c2[side2].sum() / n_samples)
    return EmpiricalLossEstimate(
        x1=x1,
        x2=x2,
        n_samples=n_samples,
        max_finite_loss=max_loss,
        one_sided_bins=one_sided,
        one_sided_mass=mass,
    )
