"""Analysis helpers: histogram comparison, empirical privacy-loss
estimation, and table rendering for the benchmark harness."""

from .convergence import (
    devices_for_target_mae,
    predicted_mean_mae,
    predicted_rr_std,
    variance_bias,
)
from .empirical_loss import EmpiricalLossEstimate, estimate_pairwise_loss
from .histograms import GridHistogram, overlap_fraction, tail_region
from .reports import render_series, render_table

__all__ = [
    "devices_for_target_mae",
    "predicted_mean_mae",
    "predicted_rr_std",
    "variance_bias",
    "EmpiricalLossEstimate",
    "estimate_pairwise_loss",
    "GridHistogram",
    "overlap_fraction",
    "tail_region",
    "render_series",
    "render_table",
]
