"""Randomized response for binary/categorical data (paper Section VI-E).

Classic Warner randomized response: report the true bit with probability
``p`` and its complement with probability ``1-p``.  For ``p > 1/2`` this
satisfies ε-LDP with ``ε = ln(p / (1-p))``.

The paper reconfigures DP-Box into this mechanism by setting the
threshold to zero; :mod:`repro.mechanisms.rr_mode` provides that
construction and maps its effective flip probability back through the
functions here.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng.urng import audited_generator

__all__ = [
    "rr_epsilon_from_keep_prob",
    "rr_keep_prob_from_epsilon",
    "RandomizedResponse",
    "debias_frequency",
]


def rr_epsilon_from_keep_prob(p: float) -> float:
    """ε of randomized response with keep probability ``p`` (> 1/2)."""
    if not 0.5 < p < 1.0:
        raise ConfigurationError("keep probability must be in (1/2, 1)")
    return math.log(p / (1.0 - p))


def rr_keep_prob_from_epsilon(epsilon: float) -> float:
    """Keep probability achieving ε-LDP: ``e^ε / (1 + e^ε)``."""
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    return math.exp(epsilon) / (1.0 + math.exp(epsilon))


def debias_frequency(observed_freq: float, keep_prob: float) -> float:
    """Unbiased estimate of the true 1-frequency from the noisy frequency.

    ``E[observed] = p·f + (1-p)·(1-f)``, so
    ``f̂ = (observed - (1-p)) / (2p - 1)``.  The estimate is clipped to
    ``[0, 1]`` (the paper's MAE plots use the clipped estimator).
    """
    if not 0.5 < keep_prob < 1.0:
        raise ConfigurationError("keep probability must be in (1/2, 1)")
    raw = (observed_freq - (1.0 - keep_prob)) / (2.0 * keep_prob - 1.0)
    return min(max(raw, 0.0), 1.0)


@dataclasses.dataclass
class RandomizedResponse:
    """ε-LDP randomized response over bits (0/1 arrays)."""

    epsilon: float
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.rng is None:
            self.rng = audited_generator()
        self.keep_prob = rr_keep_prob_from_epsilon(self.epsilon)

    def privatize(self, bits: np.ndarray) -> np.ndarray:
        """Flip each bit independently with probability ``1 - keep_prob``."""
        bits = np.asarray(bits)
        if not np.all((bits == 0) | (bits == 1)):
            raise ConfigurationError("randomized response expects 0/1 data")
        flips = self.rng.random(bits.shape) >= self.keep_prob
        return np.where(flips, 1 - bits, bits)

    def estimate_frequency(self, noisy_bits: np.ndarray) -> float:
        """Debias the observed 1-frequency back to an estimate of truth."""
        observed = float(np.mean(noisy_bits))
        return debias_frequency(observed, self.keep_prob)
