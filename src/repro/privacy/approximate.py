"""Approximate (ε, δ)-LDP analysis of discrete mechanisms.

A mechanism satisfies (ε, δ)-LDP when for all inputs ``x1, x2`` and all
output sets ``S``::

    Pr[A(x1) ∈ S] ≤ e^ε · Pr[A(x2) ∈ S] + δ.

For discrete mechanisms the tightest δ at a given ε has a closed form —
the maximal "hockey-stick" divergence over input pairs::

    δ(ε) = max_{x1,x2} Σ_y max(0, P(y|x1) - e^ε · P(y|x2)).

This lens makes the paper's negative result *quantitative*: the naive
fixed-point arm is not ε-LDP for any ε, but it **is** (ε, δ)-LDP for a δ
equal to the probability mass of its revealing outputs — a δ on the
order of the URNG tail mass, i.e. far above the cryptographically
negligible values (δ ≪ 1/N) the DP literature requires.  It is also the
natural frame for the fixed-point Gaussian generator, whose continuous
ideal is itself only (ε, δ)-DP.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .loss import DiscreteMechanismFamily

__all__ = ["delta_at_epsilon", "epsilon_at_delta", "hockey_stick_divergence"]


def hockey_stick_divergence(p1: np.ndarray, p2: np.ndarray, epsilon: float) -> float:
    """``Σ max(0, p1 - e^ε·p2)`` for two distributions on a common grid."""
    p1 = np.asarray(p1, dtype=float)
    p2 = np.asarray(p2, dtype=float)
    if p1.shape != p2.shape:
        raise ConfigurationError("distributions must share a support grid")
    return float(np.maximum(p1 - math.exp(epsilon) * p2, 0.0).sum())


def delta_at_epsilon(family: DiscreteMechanismFamily, epsilon: float) -> float:
    """Tightest δ for which the family is (ε, δ)-LDP.

    Maximizes the hockey-stick divergence over all ordered input pairs.
    δ = 0 recovers pure ε-LDP; δ = 1 means some input pair is perfectly
    distinguishable at this ε.
    """
    if epsilon < 0:
        raise ConfigurationError("epsilon must be nonnegative")
    mat = family.matrix
    e = math.exp(epsilon)
    worst = 0.0
    n = mat.shape[0]
    for i in range(n):
        # Vectorize over all x2 at once for this x1.
        gaps = np.maximum(mat[i][None, :] - e * mat, 0.0).sum(axis=1)
        worst = max(worst, float(gaps.max()))
    return worst


def epsilon_at_delta(
    family: DiscreteMechanismFamily,
    delta: float,
    eps_hi: float = 64.0,
    tol: float = 1e-6,
) -> Optional[float]:
    """Smallest ε for which the family is (ε, δ)-LDP (bisection).

    Returns ``None`` when even ``eps_hi`` cannot reach the requested δ —
    i.e. the mechanism has revealing outputs with mass above δ, which no
    finite ε can absorb.
    """
    if not 0.0 <= delta < 1.0:
        raise ConfigurationError("delta must be in [0, 1)")
    if delta_at_epsilon(family, eps_hi) > delta:
        return None
    lo, hi = 0.0, eps_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if delta_at_epsilon(family, mid) <= delta:
            hi = mid
        else:
            lo = mid
    return hi
