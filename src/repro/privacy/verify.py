"""ε-LDP verification of discrete mechanisms.

These helpers wrap the exact analyzer of :mod:`repro.privacy.loss` into a
yes/no certification used throughout the evaluation: the "LDP?" column of
paper Tables II–V is exactly ``verify_additive_mechanism(...).satisfied``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..rng.pmf import DiscretePMF
from .definitions import LossReport
from .loss import DiscreteMechanismFamily, input_grid_codes

__all__ = ["verify_family", "verify_additive_mechanism"]


def verify_family(
    family: DiscreteMechanismFamily, epsilon: float
) -> LossReport:
    """Certify a fully specified conditional-distribution family."""
    return family.worst_case_loss(epsilon_target=epsilon)


def verify_additive_mechanism(
    noise: DiscretePMF,
    m: float,
    M: float,
    epsilon: float,
    mode: str = "baseline",
    threshold: Optional[float] = None,
    n_inputs: int = 9,
    window: Optional[Tuple[int, int]] = None,
    input_codes: Optional[Sequence[int]] = None,
) -> LossReport:
    """Certify an additive-noise mechanism over sensor range ``[m, M]``.

    Parameters
    ----------
    noise:
        Exact signed noise PMF (e.g. ``FxpLaplaceRng.exact_pmf()``).
    m, M:
        Sensor range endpoints (must sit on the noise grid).
    epsilon:
        The LDP target to check against.
    mode:
        ``"baseline"``, ``"resample"`` or ``"threshold"``.
    threshold:
        Guard threshold in real units; required for the guarded modes,
        ignored for the baseline.
    n_inputs:
        Size of the sensor grid used for the check.  The endpoints —
        which realize the worst case for all paper mechanisms — are
        always included.
    window:
        Explicit output window (grid codes); defaults to
        ``[m - threshold, M + threshold]`` for guarded modes.
    input_codes:
        Explicit sensor codes, overriding the generated grid.
    """
    codes = (
        list(input_codes)
        if input_codes is not None
        else input_grid_codes(m, M, noise.step, n_points=n_inputs)
    )
    if mode in ("resample", "threshold"):
        if window is None:
            if threshold is None:
                raise ValueError("guarded modes need a threshold or window")
            k_th = int(round(threshold / noise.step))
            window = (min(codes) - k_th, max(codes) + k_th)
        family = DiscreteMechanismFamily.additive(noise, codes, window=window, mode=mode)
    else:
        family = DiscreteMechanismFamily.additive(noise, codes, mode="baseline")
    return verify_family(family, epsilon)
