"""Privacy-budget accounting (sequential composition).

The composition theorem (paper Section II-A) says a series of queries
answered with losses ``ε_1, ..., ε_n`` incurs total loss ``Σ ε_i``.  The
:class:`BudgetAccountant` tracks that sum against a fixed budget and is
the software-visible state behind DP-Box's budget register; the hardware
specifics (segment table, caching, replenishment timer) live in
:mod:`repro.core.budget`.
"""

from __future__ import annotations

from typing import List

from ..errors import BudgetExhaustedError, ConfigurationError

__all__ = ["BudgetAccountant", "compose_losses"]


def compose_losses(losses: List[float]) -> float:
    """Total privacy loss of a query sequence (sequential composition)."""
    if any(l < 0 for l in losses):
        raise ConfigurationError("losses must be nonnegative")
    return float(sum(losses))


class BudgetAccountant:
    """Tracks cumulative privacy loss against a fixed budget.

    ``spend`` debits a per-query loss; once the remaining budget cannot
    cover a requested loss, the spend is refused.  ``reset`` restores the
    full budget (DP-Box's replenishment event).
    """

    def __init__(self, budget: float):
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        self.budget = float(budget)
        self._spent = 0.0
        self._history: List[float] = []

    @property
    def spent(self) -> float:
        """Cumulative loss debited since the last reset."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return max(self.budget - self._spent, 0.0)

    @property
    def history(self) -> List[float]:
        """Per-query losses debited since the last reset."""
        return list(self._history)

    def can_spend(self, loss: float) -> bool:
        """Whether a query with this loss can still be answered."""
        return loss <= self.remaining + 1e-12

    def spend(self, loss: float) -> None:
        """Debit ``loss``; raises :class:`BudgetExhaustedError` if it
        cannot be covered."""
        if loss < 0:
            raise ConfigurationError("loss must be nonnegative")
        if not self.can_spend(loss):
            raise BudgetExhaustedError(
                f"loss {loss:.4g} exceeds remaining budget {self.remaining:.4g}"
            )
        self._spent += loss
        self._history.append(float(loss))

    def reset(self) -> None:
        """Replenish the budget (new accounting period)."""
        self._spent = 0.0
        self._history.clear()
