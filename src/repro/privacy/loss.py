"""Exact privacy-loss analysis of discrete local mechanisms.

The central object is :class:`DiscreteMechanismFamily` — the full matrix
``P[i, j] = Pr[y_j | x_i]`` of a mechanism over a grid of sensor inputs
and a common output window.  From it we compute, *exactly*:

* the worst-case privacy loss (paper eq. 4 maximized over everything),
* the per-output loss profile (paper Fig. 8),
* loss-segment thresholds for the budget-control algorithm.

Families are built from a noise PMF by the three constructions the paper
studies: plain addition (naive baseline), truncation-with-renormalization
(resampling), and clamping (thresholding).  All inputs and outputs must
live on the noise grid ``k·Δ``, which is exactly the fixed-point setting
of the paper.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng.pmf import DiscretePMF
from .definitions import LossReport

__all__ = ["DiscreteMechanismFamily", "input_grid_codes"]


def input_grid_codes(m: float, M: float, delta: float, n_points: int = 9) -> List[int]:
    """Grid-aligned sensor input codes spanning ``[m, M]``.

    Includes both endpoints (which realize the worst-case loss for every
    mechanism in the paper) plus evenly spaced interior points.  Raises if
    the range endpoints do not sit on the ``Δ`` grid.
    """
    k_m = _require_on_grid(m, delta, "range lower bound")
    k_M = _require_on_grid(M, delta, "range upper bound")
    if k_M <= k_m:
        raise ConfigurationError("range upper bound must exceed lower bound")
    if n_points < 2:
        raise ConfigurationError("need at least the two endpoints")
    span = k_M - k_m
    ks = sorted({k_m + round(i * span / (n_points - 1)) for i in range(n_points)})
    return list(ks)


def _require_on_grid(value: float, delta: float, what: str) -> int:
    k = round(value / delta)
    if not math.isclose(k * delta, value, rel_tol=0, abs_tol=1e-9 * max(1.0, abs(value))):
        raise ConfigurationError(
            f"{what} {value!r} is not a multiple of the noise step {delta!r}"
        )
    return int(k)


@dataclasses.dataclass
class DiscreteMechanismFamily:
    """``P[i, j] = Pr[y = (out_min_k + j)·Δ | x = input_codes[i]·Δ]``."""

    delta: float
    input_codes: np.ndarray  # int64, shape (n_x,)
    out_min_k: int
    matrix: np.ndarray  # float, shape (n_x, n_y)

    def __post_init__(self) -> None:
        self.input_codes = np.asarray(self.input_codes, dtype=np.int64)
        self.matrix = np.asarray(self.matrix, dtype=float)
        if self.matrix.shape[0] != self.input_codes.size:
            raise ConfigurationError("one matrix row per input required")
        sums = self.matrix.sum(axis=1)
        if np.any(np.abs(sums - 1.0) > 1e-9):
            raise ConfigurationError("each conditional distribution must sum to 1")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def additive(
        cls,
        noise: DiscretePMF,
        input_codes: Sequence[int],
        window: Optional[Tuple[int, int]] = None,
        mode: str = "baseline",
    ) -> "DiscreteMechanismFamily":
        """Build a family from additive noise ``y = x + n``.

        Parameters
        ----------
        noise:
            Signed noise PMF on the ``Δ`` grid.
        input_codes:
            Sensor input codes ``x/Δ`` (integers).
        window:
            Output-code window ``(k_lo, k_hi)``.  Required for the
            ``"resample"`` and ``"threshold"`` modes; for ``"baseline"``
            it defaults to the union of all shifted supports.
        mode:
            ``"baseline"`` — plain addition (paper's naive FxP baseline);
            ``"resample"`` — condition each shifted PMF on the window;
            ``"threshold"`` — clamp each shifted PMF into the window.
        """
        codes = np.asarray(sorted(set(int(c) for c in input_codes)), dtype=np.int64)
        if codes.size < 2:
            raise ConfigurationError("need at least two distinct inputs")
        if mode not in ("baseline", "resample", "threshold"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        if window is None:
            if mode != "baseline":
                raise ConfigurationError(f"mode {mode!r} requires an output window")
            k_lo = int(codes.min()) + noise.min_k
            k_hi = int(codes.max()) + noise.max_k
        else:
            k_lo, k_hi = int(window[0]), int(window[1])
            if k_hi <= k_lo:
                raise ConfigurationError("empty output window")
        n_y = k_hi - k_lo + 1
        mat = np.zeros((codes.size, n_y))
        for i, kx in enumerate(codes):
            shifted = noise.shifted(int(kx))
            if mode == "baseline":
                row = shifted.prob_array(k_lo, k_hi)
            elif mode == "resample":
                row = shifted.truncated(k_lo, k_hi, renormalize=True).probs
            else:
                row = shifted.clamped(k_lo, k_hi).probs
            mat[i] = row
        return cls(delta=noise.step, input_codes=codes, out_min_k=k_lo, matrix=mat)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def output_codes(self) -> np.ndarray:
        """Grid codes of the output window."""
        return np.arange(self.out_min_k, self.out_min_k + self.matrix.shape[1])

    def output_values(self) -> np.ndarray:
        """Real output values of the window."""
        return self.output_codes * self.delta

    # ------------------------------------------------------------------
    # Loss computations
    # ------------------------------------------------------------------
    def loss_profile(self) -> np.ndarray:
        """Worst pairwise loss at each output: ``max_{x1,x2} ln ratio``.

        Entries are ``+inf`` where some inputs can produce the output and
        others cannot, and ``nan`` where *no* input can produce it (such
        outputs never occur and do not affect privacy).
        """
        p = self.matrix
        with np.errstate(divide="ignore"):
            logp = np.where(p > 0, np.log(np.where(p > 0, p, 1.0)), -np.inf)
        top = logp.max(axis=0)
        bottom = logp.min(axis=0)
        with np.errstate(invalid="ignore"):
            profile = top - bottom  # -inf - -inf = nan (unreachable outputs)
        unreachable = ~np.isfinite(top)  # all rows zero
        profile = np.where(unreachable, np.nan, profile)
        mixed = np.isfinite(top) & ~np.isfinite(bottom)
        profile = np.where(mixed, np.inf, profile)
        return profile

    def worst_case_loss(self, epsilon_target: Optional[float] = None) -> LossReport:
        """Exact supremum of the privacy loss over outputs and input pairs."""
        profile = self.loss_profile()
        finite_or_inf = profile[~np.isnan(profile)]
        if finite_or_inf.size == 0:
            raise ConfigurationError("mechanism has no reachable outputs")
        j = int(np.nanargmax(profile))
        worst = float(profile[j])
        n_inf = int(np.sum(np.isinf(profile)))
        p_col = self.matrix[:, j]
        i1 = int(np.argmax(p_col))
        positive = p_col > 0
        if positive.all():
            i2 = int(np.argmin(p_col))
        else:
            i2 = int(np.argmax(~positive))
        return LossReport(
            worst_loss=worst,
            epsilon_target=epsilon_target,
            argmax_output=float((self.out_min_k + j) * self.delta),
            argmax_inputs=(
                float(self.input_codes[i1] * self.delta),
                float(self.input_codes[i2] * self.delta),
            ),
            n_infinite_outputs=n_inf,
        )

    def loss_by_segment(self, boundaries_k: Sequence[int]) -> List[float]:
        """Worst loss within consecutive output segments.

        ``boundaries_k`` are output grid codes splitting the window into
        ``len(boundaries_k) + 1`` segments ``(..., b0], (b0, b1], ...``;
        used to build the budget-control segment table (Fig. 8 / Alg. 1).
        """
        profile = self.loss_profile()
        codes = self.output_codes
        bounds = sorted(int(b) for b in boundaries_k)
        edges = [codes[0] - 1] + bounds + [codes[-1]]
        losses = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (codes > lo) & (codes <= hi)
            seg = profile[mask]
            seg = seg[~np.isnan(seg)]
            losses.append(float(seg.max()) if seg.size else 0.0)
        return losses
