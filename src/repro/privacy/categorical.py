"""Categorical LDP mechanisms beyond binary RR (paper Section VI-E).

The paper notes that DP-Box's randomized-response mode targets
categorical data and cites Google's RAPPOR as the deployed example.
This module provides the two standard categorical constructions a
library user would reach for:

* :class:`KRandomizedResponse` — direct k-ary RR: keep the true category
  with probability ``e^ε / (e^ε + k - 1)``, otherwise report one of the
  other categories uniformly.  Exactly ε-LDP; the utility-optimal
  generalization of Warner RR.
* :class:`OneHotRappor` — the basic one-round RAPPOR: one-hot encode and
  pass every bit through an independent binary RR.  A category change
  flips two bits, so per-bit keep probability ``e^{ε/2}/(1+e^{ε/2})``
  gives ε-LDP overall.  Less efficient than k-RR for small k, but each
  bit can be produced by a zero-threshold DP-Box independently, which is
  the hardware-relevant property.

Both expose exact channel matrices, exact ε, and debiased frequency
estimators (clipped and renormalized onto the simplex).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng.urng import audited_generator

__all__ = ["KRandomizedResponse", "OneHotRappor"]


def _check_categories(values: np.ndarray, k: int) -> np.ndarray:
    values = np.asarray(values)
    if values.size == 0:
        raise ConfigurationError("empty input")
    if not np.issubdtype(values.dtype, np.integer):
        raise ConfigurationError("categories must be integers")
    if values.min() < 0 or values.max() >= k:
        raise ConfigurationError(f"categories must be in 0..{k - 1}")
    return values


def _project_to_simplex(freqs: np.ndarray) -> np.ndarray:
    clipped = np.clip(freqs, 0.0, None)
    total = clipped.sum()
    if total <= 0:
        return np.full_like(freqs, 1.0 / freqs.size)
    return clipped / total


class KRandomizedResponse:
    """Direct k-ary randomized response (exactly ε-LDP)."""

    def __init__(
        self,
        n_categories: int,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_categories < 2:
            raise ConfigurationError("need at least two categories")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.k = n_categories
        self.epsilon = epsilon
        self.rng = rng or audited_generator()
        e = math.exp(epsilon)
        #: Probability of reporting the true category.
        self.keep_prob = e / (e + self.k - 1)
        #: Probability of reporting any specific *other* category.
        self.other_prob = 1.0 / (e + self.k - 1)

    # ------------------------------------------------------------------
    def channel_matrix(self) -> np.ndarray:
        """Exact k×k channel: rows = true category, cols = report."""
        ch = np.full((self.k, self.k), self.other_prob)
        np.fill_diagonal(ch, self.keep_prob)
        return ch

    def exact_epsilon(self) -> float:
        """``ln(keep/other)`` — equals the configured ε by construction."""
        return math.log(self.keep_prob / self.other_prob)

    # ------------------------------------------------------------------
    def privatize(self, categories: np.ndarray) -> np.ndarray:
        """Report each category through the k-RR channel."""
        categories = _check_categories(categories, self.k)
        keep = self.rng.random(categories.shape) < self.keep_prob
        # Uniform over the k-1 *other* categories: draw 0..k-2 and skip
        # the true value.
        others = self.rng.integers(0, self.k - 1, size=categories.shape)
        others = others + (others >= categories)
        return np.where(keep, categories, others)

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Debiased category-frequency estimates (projected to simplex).

        ``E[obs_j] = f_j·keep + (1-f_j)·other`` per category, inverted
        linearly.
        """
        reports = _check_categories(reports, self.k)
        obs = np.bincount(reports, minlength=self.k) / reports.size
        raw = (obs - self.other_prob) / (self.keep_prob - self.other_prob)
        return _project_to_simplex(raw)


class OneHotRappor:
    """Basic one-round RAPPOR: one-hot encoding + per-bit binary RR."""

    def __init__(
        self,
        n_categories: int,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_categories < 2:
            raise ConfigurationError("need at least two categories")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.k = n_categories
        self.epsilon = epsilon
        self.rng = rng or audited_generator()
        # A category change flips exactly two bits; each contributes
        # ln(p/(1-p)), so per-bit keep prob e^{ε/2}/(1+e^{ε/2}).
        half = math.exp(epsilon / 2.0)
        self.bit_keep_prob = half / (1.0 + half)

    # ------------------------------------------------------------------
    def exact_epsilon(self) -> float:
        """Worst-case log ratio over reports: ``2·ln(p/(1-p))`` = ε."""
        p = self.bit_keep_prob
        return 2.0 * math.log(p / (1.0 - p))

    def privatize_bits(self, categories: np.ndarray) -> np.ndarray:
        """One-hot encode and flip each bit independently.

        Returns an ``(n, k)`` 0/1 matrix — what n zero-threshold DP-Box
        channels would emit.
        """
        categories = _check_categories(categories, self.k)
        onehot = np.zeros((categories.size, self.k), dtype=int)
        onehot[np.arange(categories.size), categories] = 1
        flips = self.rng.random(onehot.shape) >= self.bit_keep_prob
        return np.where(flips, 1 - onehot, onehot)

    def estimate_frequencies(self, noisy_bits: np.ndarray) -> np.ndarray:
        """Per-bit debias, then simplex projection."""
        noisy_bits = np.asarray(noisy_bits)
        if noisy_bits.ndim != 2 or noisy_bits.shape[1] != self.k:
            raise ConfigurationError(f"expected an (n, {self.k}) bit matrix")
        p = self.bit_keep_prob
        obs = noisy_bits.mean(axis=0)
        raw = (obs - (1.0 - p)) / (2.0 * p - 1.0)
        return _project_to_simplex(raw)
