"""The ideal (continuous) local Laplace mechanism (paper Section II-B).

For sensor data ``x ∈ [m, M]`` with range length ``d = M - m``, reporting
``y = x + n`` with ``n ~ Lap(d/ε)`` satisfies ε-LDP: for any two inputs
the density ratio is ``exp(|x2 - x1|/λ) <= exp(d/λ) = exp(ε)``.

This module provides that mechanism over float64 — the "Ideal Local DP"
arm of the evaluation — plus its analytic worst-case loss (which tests
compare against the discrete analyzer on fine grids).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng.laplace_ideal import IdealLaplace
from ..rng.urng import audited_generator

__all__ = ["IdealLaplaceMechanismCore", "ideal_worst_case_loss"]


@dataclasses.dataclass
class IdealLaplaceMechanismCore:
    """Float64 local Laplace mechanism for inputs in ``[m, M]``."""

    m: float
    M: float
    epsilon: float
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.M <= self.m:
            raise ConfigurationError("M must exceed m")
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.rng is None:
            self.rng = audited_generator()
        self._laplace = IdealLaplace(self.d / self.epsilon)

    @property
    def d(self) -> float:
        """Sensor range length ``M - m``."""
        return self.M - self.m

    @property
    def lam(self) -> float:
        """Noise scale ``d/ε``."""
        return self.d / self.epsilon

    def privatize(self, x: np.ndarray) -> np.ndarray:
        """Noise a batch of sensor values (must lie in ``[m, M]``)."""
        x = np.asarray(x, dtype=float)
        if np.any((x < self.m - 1e-9) | (x > self.M + 1e-9)):
            raise ConfigurationError("sensor values outside the declared range")
        return x + self._laplace.sample(x.size, self.rng).reshape(x.shape)

    def sample_noise(self, n: int) -> np.ndarray:
        """Draw ``n`` Laplace noise values (the pipeline's draw stage)."""
        return self._laplace.sample(n, self.rng)

    def log_likelihood(self, y: np.ndarray, x: float) -> np.ndarray:
        """``ln Pr[y | x]`` density — for loss/attack analysis."""
        return self._laplace.log_pdf(np.asarray(y, dtype=float) - x)


def ideal_worst_case_loss(m: float, M: float, epsilon: float) -> float:
    """Analytic worst-case loss of the ideal mechanism: exactly ``ε``.

    ``sup_y ln[f(y-x1)/f(y-x2)] = |x1-x2|/λ``, maximized at the range
    endpoints where ``|x1-x2| = d``, giving ``d/λ = ε``.
    """
    if M <= m or epsilon <= 0:
        raise ConfigurationError("need M > m and epsilon > 0")
    return epsilon
