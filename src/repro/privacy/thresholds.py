"""Threshold selection for resampling and thresholding (paper III-B).

Two routes to a threshold that bounds the worst-case privacy loss by
``n·ε``:

* **Closed forms** (paper eqs. 13 and 15, re-derived — see DESIGN.md §5):

  - resampling: the binding constraint is the ratio of noise-PMF values a
    distance ``d`` apart, ``Pr[n=kΔ] / Pr[n=kΔ+d] <= exp(n·ε)``; bounding
    the eq.-(11) counts with ``m1-1 <= ⌊m1⌋ <= m1`` yields
    ``k <= (d/(Δ·ε)) · [Bu·ln2 + ln(2·sinh(a/2)) +
    ln((e^{(n-1)ε}-1)/(1+e^{n·ε}))]`` with ``a = Δ·ε/d``.

  - thresholding: the binding constraint is the ratio of the boundary-atom
    *tail masses*, ``Pr[n>=kΔ] / Pr[n>=kΔ+d] <= exp(n·ε)``, yielding
    ``n_th2 = Δ/2 + (d/ε)·(Bu·ln2 + ln(e^{-ε} - e^{-n·ε}))`` — the exact
    structure of paper eq. (15).

* **Exact calibration** — search for the largest threshold whose *exactly
  computed* worst-case loss (via :mod:`repro.privacy.loss`, including
  resampling renormalization and thresholding atoms) meets the target.
  This is the arbiter: the closed forms ignore the renormalization term
  and (for thresholding) the interior of the clamped window, so exact
  calibration can return a smaller threshold.  DP-Box uses exact
  calibration by default.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import CalibrationError, ConfigurationError
from ..rng.pmf import DiscretePMF
from .loss import DiscreteMechanismFamily

__all__ = [
    "paper_resampling_threshold",
    "paper_thresholding_threshold",
    "calibrate_threshold_exact",
]


def _validate(d: float, delta: float, epsilon: float, input_bits: int, n: float) -> None:
    if d <= 0 or delta <= 0 or epsilon <= 0:
        raise ConfigurationError("d, delta and epsilon must be positive")
    if input_bits < 2:
        raise ConfigurationError("input_bits must be >= 2")
    if n <= 1.0:
        raise CalibrationError(
            "the loss multiple n must exceed 1: quantized mechanisms cannot "
            "match the ideal eps bound exactly (paper Section III-B)"
        )


def paper_resampling_threshold(
    d: float, delta: float, epsilon: float, input_bits: int, n: float
) -> float:
    """Resampling threshold ``n_th1`` bounding the loss by ``n·ε`` (eq. 13)."""
    _validate(d, delta, epsilon, input_bits, n)
    a = delta * epsilon / d
    s = 2.0 * math.sinh(a / 2.0)
    ratio = (math.exp((n - 1.0) * epsilon) - 1.0) / (1.0 + math.exp(n * epsilon))
    k_max = (d / (delta * epsilon)) * (
        input_bits * math.log(2.0) + math.log(s) + math.log(ratio)
    )
    k = math.floor(k_max)
    if k < 1:
        raise CalibrationError(
            f"no positive resampling threshold achieves loss {n}·ε with "
            f"Bu={input_bits}, Δ={delta}, ε={epsilon}"
        )
    return k * delta


def paper_thresholding_threshold(
    d: float, delta: float, epsilon: float, input_bits: int, n: float
) -> float:
    """Thresholding threshold ``n_th2`` bounding the *boundary-atom* loss
    by ``n·ε`` (eq. 15)."""
    _validate(d, delta, epsilon, input_bits, n)
    inner = math.exp(-epsilon) - math.exp(-n * epsilon)
    k_max = 0.5 + (d / (delta * epsilon)) * (
        input_bits * math.log(2.0) + math.log(inner)
    )
    k = math.floor(k_max)
    if k < 1:
        raise CalibrationError(
            f"no positive thresholding threshold achieves loss {n}·ε with "
            f"Bu={input_bits}, Δ={delta}, ε={epsilon}"
        )
    return k * delta


def _family_for_threshold(
    noise: DiscretePMF,
    input_codes: Sequence[int],
    k_th: int,
    mode: str,
) -> DiscreteMechanismFamily:
    codes = sorted(int(c) for c in input_codes)
    window = (codes[0] - k_th, codes[-1] + k_th)
    return DiscreteMechanismFamily.additive(noise, codes, window=window, mode=mode)


def exact_worst_loss_at_threshold(
    noise: DiscretePMF,
    input_codes: Sequence[int],
    threshold: float,
    mode: str,
) -> float:
    """Exact worst-case loss of a guarded mechanism at a given threshold.

    ``mode`` is ``"resample"`` or ``"threshold"``; the output window is
    ``[min(x) - threshold, max(x) + threshold]`` in grid units.
    """
    k_th = int(round(threshold / noise.step))
    if k_th < 0:
        raise ConfigurationError("threshold must be nonnegative")
    fam = _family_for_threshold(noise, input_codes, k_th, mode)
    return fam.worst_case_loss().worst_loss


def calibrate_threshold_exact(
    noise: DiscretePMF,
    input_codes: Sequence[int],
    target_loss: float,
    mode: str,
    k_hint: int = 0,
) -> float:
    """Largest threshold whose exact worst-case loss is ``<= target_loss``.

    Binary-searches the threshold code, then (because discrete counting
    makes the loss only *approximately* monotone in the threshold) walks
    downward until the exact check passes.  ``k_hint`` seeds the upper
    bracket, e.g. with a paper closed-form value.
    """
    if mode not in ("resample", "threshold"):
        raise ConfigurationError(f"unknown mode {mode!r}")
    if target_loss <= 0:
        raise ConfigurationError("target_loss must be positive")
    codes = sorted(int(c) for c in input_codes)
    span = codes[-1] - codes[0]
    k_cap = noise.max_k  # beyond the noise support a wider window adds nothing
    if k_cap < 1:
        raise CalibrationError("noise support too small to calibrate")

    def ok(k: int) -> bool:
        fam = _family_for_threshold(noise, codes, k, mode)
        return fam.worst_case_loss().worst_loss <= target_loss + 1e-12

    # The smallest sensible window still spans the data range plus one step.
    k_lo_bound = 1
    if not ok(k_lo_bound):
        raise CalibrationError(
            f"even the minimal window exceeds loss {target_loss}; "
            "increase the loss multiple n or the RNG resolution"
        )
    hi = min(max(k_hint, k_lo_bound + 1), k_cap)
    # Grow the bracket while the hint is still private.
    while hi < k_cap and ok(hi):
        hi = min(hi * 2, k_cap)
    lo = k_lo_bound
    # Invariant: ok(lo) holds; find the frontier via bisection.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    # Handle the edge where even k_cap is private.
    if hi == k_cap and ok(k_cap):
        lo = k_cap
    # Discrete counting can make the loss wiggle: confirm, walking down.
    k = lo
    while k > k_lo_bound and not ok(k):  # pragma: no cover - safety net
        k -= 1
    _ = span  # documented: the window always covers the data span by design
    return k * noise.step
