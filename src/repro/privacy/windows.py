"""Windowed privacy-budget accounting.

DP-Box's replenishment timer (Section III-C / IV-C) is a *fixed-window*
privacy policy: "no more than B of loss per period".  This module states
that policy precisely and adds the stricter *sliding-window* variant a
deployment may prefer:

* :class:`FixedWindowAccountant` — the budget resets at period
  boundaries; the guarantee is per calendar window.  Worst-case loss in
  any window of length W is B; in any *sliding* interval of length W it
  can reach 2B (the classic boundary-straddling weakness — tested).
* :class:`SlidingWindowAccountant` — charges expire exactly W ticks after
  they were incurred, so *every* interval of length W is bounded by B.

Both share the DP-Box cache semantics: a refused charge means "serve the
cached output instead".
"""

from __future__ import annotations

import collections
from typing import Deque, Tuple

from ..errors import ConfigurationError

__all__ = ["FixedWindowAccountant", "SlidingWindowAccountant"]


class _WindowedBase:
    def __init__(self, budget: float, window: int):
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.budget = float(budget)
        self.window = int(window)
        self.now = 0

    def advance(self, ticks: int = 1) -> None:
        """Advance the clock (cycles, epochs — any monotone tick)."""
        if ticks < 0:
            raise ConfigurationError("time cannot go backwards")
        self.now += ticks


class FixedWindowAccountant(_WindowedBase):
    """Budget resets at multiples of ``window`` (DP-Box replenishment)."""

    def __init__(self, budget: float, window: int):
        super().__init__(budget, window)
        self._spent_this_window = 0.0
        self._window_index = 0

    def _roll(self) -> None:
        idx = self.now // self.window
        if idx != self._window_index:
            self._window_index = idx
            self._spent_this_window = 0.0

    @property
    def remaining(self) -> float:
        """Budget left in the current window."""
        self._roll()
        return max(self.budget - self._spent_this_window, 0.0)

    def try_spend(self, loss: float) -> bool:
        """Charge if the current window can afford it."""
        if loss < 0:
            raise ConfigurationError("loss must be nonnegative")
        self._roll()
        if loss > self.remaining + 1e-12:
            return False
        self._spent_this_window += loss
        return True


class SlidingWindowAccountant(_WindowedBase):
    """Every interval of length ``window`` is bounded by ``budget``."""

    def __init__(self, budget: float, window: int):
        super().__init__(budget, window)
        self._charges: Deque[Tuple[int, float]] = collections.deque()
        self._active = 0.0

    def _expire(self) -> None:
        horizon = self.now - self.window
        while self._charges and self._charges[0][0] <= horizon:
            _, loss = self._charges.popleft()
            self._active -= loss

    @property
    def remaining(self) -> float:
        """Budget left in the window ending now."""
        self._expire()
        return max(self.budget - self._active, 0.0)

    def try_spend(self, loss: float) -> bool:
        """Charge if no window would be pushed over budget."""
        if loss < 0:
            raise ConfigurationError("loss must be nonnegative")
        self._expire()
        if loss > self.remaining + 1e-12:
            return False
        self._charges.append((self.now, loss))
        self._active += loss
        return True

    def spent_in_window_ending_now(self) -> float:
        """Active (unexpired) loss."""
        self._expire()
        return self._active
