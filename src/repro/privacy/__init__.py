"""Differential-privacy core: definitions, exact loss analysis, thresholds,
budget accounting, verification, and randomized response."""

from .accountant import BudgetAccountant, compose_losses
from .approximate import delta_at_epsilon, epsilon_at_delta, hockey_stick_divergence
from .categorical import KRandomizedResponse, OneHotRappor
from .definitions import LossReport, pointwise_loss
from .laplace_mechanism import IdealLaplaceMechanismCore, ideal_worst_case_loss
from .loss import DiscreteMechanismFamily, input_grid_codes
from .randomized_response import (
    RandomizedResponse,
    debias_frequency,
    rr_epsilon_from_keep_prob,
    rr_keep_prob_from_epsilon,
)
from .thresholds import (
    calibrate_threshold_exact,
    exact_worst_loss_at_threshold,
    paper_resampling_threshold,
    paper_thresholding_threshold,
)
from .verify import verify_additive_mechanism, verify_family
from .windows import FixedWindowAccountant, SlidingWindowAccountant

__all__ = [
    "BudgetAccountant",
    "compose_losses",
    "delta_at_epsilon",
    "epsilon_at_delta",
    "hockey_stick_divergence",
    "KRandomizedResponse",
    "OneHotRappor",
    "LossReport",
    "pointwise_loss",
    "IdealLaplaceMechanismCore",
    "ideal_worst_case_loss",
    "DiscreteMechanismFamily",
    "input_grid_codes",
    "RandomizedResponse",
    "debias_frequency",
    "rr_epsilon_from_keep_prob",
    "rr_keep_prob_from_epsilon",
    "calibrate_threshold_exact",
    "exact_worst_loss_at_threshold",
    "paper_resampling_threshold",
    "paper_thresholding_threshold",
    "verify_additive_mechanism",
    "verify_family",
    "FixedWindowAccountant",
    "SlidingWindowAccountant",
]
