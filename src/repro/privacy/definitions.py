"""Core definitions: privacy loss and epsilon-LDP (paper Section II).

A randomized local mechanism with conditional output distribution
``Pr[y | x]`` satisfies ε-LDP when, for *every* pair of inputs
``x1, x2`` and every output ``y``::

    Pr[y | x1] <= exp(ε) · Pr[y | x2]            (paper eq. 5)

The (pointwise) privacy loss of reporting ``y`` is::

    loss(y; x1, x2) = ln( Pr[y|x1] / Pr[y|x2] )   (paper eq. 4)

ε-LDP holds iff the loss is bounded by ε over all choices, so the library
verifies privacy by *computing the exact worst-case loss*.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

__all__ = ["pointwise_loss", "LossReport"]


def pointwise_loss(p1: float, p2: float) -> float:
    """``ln(p1/p2)`` with the DP conventions for zero probabilities.

    * both zero → 0 (the output is unreachable; it constrains nothing);
    * ``p1 > 0, p2 == 0`` → ``+inf`` (observing ``y`` rules out ``x2``);
    * ``p1 == 0, p2 > 0`` → ``-inf`` (symmetric case).
    """
    if p1 == 0.0 and p2 == 0.0:
        return 0.0
    if p2 == 0.0:
        return math.inf
    if p1 == 0.0:
        return -math.inf
    # log(p1) - log(p2) rather than log(p1/p2): the quotient can overflow
    # to inf when p2 is subnormal even though the loss itself is finite.
    return math.log(p1) - math.log(p2)


@dataclasses.dataclass(frozen=True)
class LossReport:
    """Result of an exact worst-case privacy-loss computation.

    Attributes
    ----------
    worst_loss:
        ``sup_{y, x1, x2} loss(y; x1, x2)``; ``inf`` when LDP fails.
    epsilon_target:
        The bound the mechanism was checked against (``None`` if the
        caller only asked for the loss itself).
    satisfied:
        ``worst_loss <= epsilon_target`` (``None`` without a target).
    argmax_output:
        An output value achieving (or approaching) the worst loss.
    argmax_inputs:
        The input pair achieving it.
    n_infinite_outputs:
        How many output grid points have infinite loss (0 when LDP holds).
    """

    worst_loss: float
    epsilon_target: Optional[float] = None
    argmax_output: Optional[float] = None
    argmax_inputs: Optional[tuple] = None
    n_infinite_outputs: int = 0

    @property
    def satisfied(self) -> Optional[bool]:
        if self.epsilon_target is None:
            return None
        return bool(self.worst_loss <= self.epsilon_target + 1e-12)

    @property
    def is_finite(self) -> bool:
        """True when no output reveals any input with certainty."""
        return bool(np.isfinite(self.worst_loss))

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.is_finite:
            return (
                f"LDP violated: {self.n_infinite_outputs} output(s) have "
                f"infinite privacy loss (e.g. y={self.argmax_output})"
            )
        tail = ""
        if self.epsilon_target is not None:
            verdict = "OK" if self.satisfied else "EXCEEDED"
            tail = f" vs target {self.epsilon_target:.4g} [{verdict}]"
        return f"worst-case privacy loss {self.worst_loss:.4g}{tail}"
