"""The untrusted aggregation server (paper Fig. 2(b), right side).

Collects privatized reports per epoch and answers aggregate queries over
them.  The server never holds raw data — by construction it only ever
receives :class:`~repro.aggregation.protocol.Report` objects — and the
post-processing property (paper Section II-B) means anything it computes
inherits each device's LDP guarantee.

Beyond the naive query answers, the server offers the noise-aware
estimators of :mod:`repro.queries.estimators` when told the mechanism's
Laplace scale, and tolerates stragglers (epochs simply aggregate whoever
reported).
"""

from __future__ import annotations

import collections
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..queries.estimators import debiased_variance
from .protocol import Report

__all__ = ["AggregationServer", "EpochSummary"]


import dataclasses


@dataclasses.dataclass(frozen=True)
class EpochSummary:
    """Aggregate view of one collection round."""

    epoch: int
    n_reports: int
    n_devices: int
    mean: float
    median: float
    variance: float
    variance_debiased: Optional[float]


class AggregationServer:
    """Collects reports and answers aggregate queries per epoch."""

    def __init__(self, noise_scale: Optional[float] = None):
        #: λ of the devices' Laplace noise, if known; enables debiasing.
        self.noise_scale = noise_scale
        self._epochs: Dict[int, List[Report]] = collections.defaultdict(list)

    # ------------------------------------------------------------------
    def submit(self, report: Report) -> None:
        """Accept one report (idempotence is the device's concern)."""
        self._epochs[report.epoch].append(report)

    def submit_all(self, reports) -> None:
        """Accept a batch of reports."""
        for r in reports:
            self.submit(r)

    @property
    def epochs(self) -> List[int]:
        """Epochs with at least one report, ascending."""
        return sorted(self._epochs)

    def reports(self, epoch: int) -> List[Report]:
        """All reports of an epoch."""
        if epoch not in self._epochs:
            raise ConfigurationError(f"no reports for epoch {epoch}")
        return list(self._epochs[epoch])

    def values(self, epoch: int) -> np.ndarray:
        """Reported values of an epoch."""
        return np.array([r.value for r in self.reports(epoch)])

    # ------------------------------------------------------------------
    def summarize(self, epoch: int) -> EpochSummary:
        """Aggregate statistics for one epoch."""
        reports = self.reports(epoch)
        vals = np.array([r.value for r in reports])
        debiased = (
            debiased_variance(vals, self.noise_scale)
            if self.noise_scale is not None and vals.size > 1
            else None
        )
        return EpochSummary(
            epoch=epoch,
            n_reports=int(vals.size),
            n_devices=len({r.device_id for r in reports}),
            mean=float(vals.mean()),
            median=float(np.median(vals)),
            variance=float(vals.var()),
            variance_debiased=debiased,
        )

    def count_above(self, epoch: int, threshold: float) -> int:
        """Counting query on an epoch's reports."""
        return int(np.count_nonzero(self.values(epoch) > threshold))

    def mean_trend(self) -> List[float]:
        """Per-epoch means across all collected epochs."""
        return [float(self.values(e).mean()) for e in self.epochs]

    # ------------------------------------------------------------------
    def worst_case_disclosure(self, device_id: str) -> float:
        """Server-side composition bound on one device's disclosure.

        Sums the claimed per-report loss over *every* report the device
        sent.  The server cannot tell cached replays (which add no loss)
        from fresh reports, so this is deliberately conservative: it is
        always ≥ the device's own accountant (which is the authoritative
        number — privacy is enforced on-device).
        """
        return float(
            sum(
                r.claimed_loss
                for reports in self._epochs.values()
                for r in reports
                if r.device_id == device_id
            )
        )
