"""The untrusted aggregation server (paper Fig. 2(b), right side).

Collects privatized reports per epoch and answers aggregate queries over
them.  The server never holds raw data — by construction it only ever
receives :class:`~repro.aggregation.protocol.Report` objects (or arrays
of already-privatized values) — and the post-processing property (paper
Section II-B) means anything it computes inherits each device's LDP
guarantee.

Two retention modes:

* **retain** (default) — every report is kept, every query is answered
  from the raw report set.  This is the reference semantics; memory is
  O(reports).
* **streaming** (``streaming=True``) — reports are folded into per-epoch
  running moments (count / mean / M2 / min / max, plus count-above
  counters for pre-registered thresholds) the moment they arrive, and
  then discarded.  Memory is O(epochs), independent of fleet size —
  the sublinear-server-state regime the communication-efficient LDP
  literature argues for (PAPERS.md, Shahmiri et al.).  Queries that
  need the raw reports (:meth:`values`, :meth:`reports`, medians,
  unregistered thresholds) raise a typed
  :class:`~repro.errors.ConfigurationError`.

Both modes accept *batched* submissions (:meth:`submit_array`) — one
NumPy array per (epoch, shard) instead of one ``Report`` object per
device — which is what lets the sharded fleet runner feed a 50k-device
epoch without materializing 50k Python objects.

Beyond the naive query answers, the server offers the noise-aware
estimators of :mod:`repro.queries.estimators` when told the mechanism's
Laplace scale, and tolerates stragglers (epochs simply aggregate whoever
reported).
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import ConfigurationError
from ..queries.estimators import debiased_variance
from ..queries.frequency import FrequencyEstimate, estimate_from_counts
from .protocol import Report

__all__ = ["AggregationServer", "EpochSummary", "IngestHandle"]


@dataclasses.dataclass(frozen=True)
class EpochSummary:
    """Aggregate view of one collection round.

    In streaming mode ``median`` is ``nan`` (an exact median needs the
    raw reports) and ``n_devices`` equals ``n_reports`` (the streaming
    fold assumes the fleet contract of one report per device per epoch;
    it does not retain ids to deduplicate).
    """

    epoch: int
    n_reports: int
    n_devices: int
    mean: float
    median: float
    variance: float
    variance_debiased: Optional[float]


class _EpochMoments:
    """Running moments of one epoch — O(1) state regardless of reports.

    Mean/variance use Chan's parallel update, so folding shard batches
    in shard order is deterministic: a fleet sharded across W workers
    folds the *same* per-shard batches in the *same* order for every W,
    hence identical moments bit-for-bit.
    """

    __slots__ = ("n", "mean", "m2", "lo", "hi", "count_above")

    def __init__(self, thresholds: Tuple[float, ...]):
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.lo = math.inf
        self.hi = -math.inf
        self.count_above: Dict[float, int] = {float(t): 0 for t in thresholds}

    def fold(self, values: np.ndarray) -> None:
        k = int(values.size)
        if k == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(np.square(values - batch_mean).sum())
        n = self.n + k
        delta = batch_mean - self.mean
        self.mean += delta * (k / n)
        self.m2 += batch_m2 + delta * delta * (self.n * k / n)
        self.n = n
        self.lo = min(self.lo, float(values.min()))
        self.hi = max(self.hi, float(values.max()))
        for t in self.count_above:
            self.count_above[t] += int(np.count_nonzero(values > t))

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.n,
            "mean": self.mean,
            "m2": self.m2,
            "min": self.lo,
            "max": self.hi,
            "count_above": dict(self.count_above),
        }


class _EpochCategoryCounts:
    """Per-epoch categorical support counts — O(d) state, both modes.

    Support counts are exact integers and addition is associative, so
    folding shard batches in shard order is trivially bit-identical for
    any worker count; there is nothing to retain beyond the counts and
    the report tally, which is why the categorical path is streaming-
    native even on a retaining server.
    """

    __slots__ = ("counts", "n")

    def __init__(self, n_categories: int):
        self.counts = np.zeros(int(n_categories), dtype=np.int64)
        self.n = 0

    def fold(self, counts: np.ndarray, n: int) -> None:
        self.counts += counts
        self.n += int(n)


@dataclasses.dataclass
class _ReportBatch:
    """A column-oriented batch of reports (retain mode, array submission)."""

    device_ids: Sequence[str]
    values: np.ndarray
    claimed_loss: float


class IngestHandle:
    """Thread-safe submission facade over one :class:`AggregationServer`.

    The server itself is single-threaded by design (the coordinator owns
    it).  A network-facing ingestion service, though, folds batches from
    an event loop while metrics/snapshot requests may arrive from other
    threads — so every mutating entry point and every snapshot goes
    through one lock.  The lock serializes *whole batches*: a fold is
    atomic with respect to snapshots, so an observer never sees a batch
    half-applied (the "never ingest a partial batch" contract the
    kill-the-server test pins down).

    All handles of one server share that server's single lock
    (:meth:`AggregationServer.ingest_handle` returns a cached instance),
    so two services fronting the same server still serialize correctly.
    """

    def __init__(self, server: "AggregationServer", lock: threading.Lock):
        self._server = server
        self._lock = lock

    def submit_array(self, *args, **kwargs) -> None:
        with self._lock:
            self._server.submit_array(*args, **kwargs)

    def submit_counts(self, *args, **kwargs) -> None:
        with self._lock:
            self._server.submit_counts(*args, **kwargs)

    def submit_many(
        self, folds: Sequence[Callable[["AggregationServer"], None]]
    ) -> List[Optional[Exception]]:
        """Apply several whole-batch folds under **one** lock acquisition.

        The ingestion service's drain side coalesces every batch
        currently queued into a single ``submit_many`` call, so the
        lock handshake and the event-loop → executor hop are paid once
        per *burst* instead of once per batch.  Each fold callable
        receives the raw server (the lock is already held — callables
        must not re-enter the handle) and is applied **in order**, one
        complete batch at a time: batch boundaries, fold order, and
        hence bit-identity with the same batches submitted in-process
        are all preserved — batches are deliberately *not* concatenated,
        because Chan's moment merge is order- but not
        splitting-invariant.

        Folds are isolated: an exception in one is captured and
        returned at its index (``None`` for success) while the rest
        still fold — one malformed batch that slipped the guards must
        not discard its innocent neighbors.
        """
        errors: List[Optional[Exception]] = []
        with self._lock:
            for fold in folds:
                try:
                    fold(self._server)
                    errors.append(None)
                except Exception as exc:  # isolate per-batch failures
                    errors.append(exc)
        return errors

    def record_claimed_losses(self, losses: Mapping[str, float]) -> None:
        with self._lock:
            self._server.record_claimed_losses(losses)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return self._server.snapshot()


class AggregationServer:
    """Collects reports and answers aggregate queries per epoch."""

    def __init__(
        self,
        noise_scale: Optional[float] = None,
        streaming: bool = False,
        count_thresholds: Sequence[float] = (),
    ):
        #: λ of the devices' Laplace noise, if known; enables debiasing.
        self.noise_scale = noise_scale
        self.streaming = bool(streaming)
        #: Thresholds whose count-above queries the streaming fold keeps.
        self.count_thresholds: Tuple[float, ...] = tuple(
            float(t) for t in count_thresholds
        )
        #: Retain mode: per-epoch submission-ordered list of ``Report``
        #: objects and ``_ReportBatch`` columns.
        self._epochs: Dict[int, List[Union[Report, _ReportBatch]]] = {}
        #: Streaming mode: per-epoch running moments.
        self._moments: Dict[int, _EpochMoments] = {}
        #: Categorical path (both modes): per-epoch support counts.
        self._categories: Dict[int, _EpochCategoryCounts] = {}
        #: Running per-device claimed-loss totals (both modes) — the
        #: server-side composition bound behind
        #: :meth:`worst_case_disclosure`.
        self._disclosure: Dict[str, float] = {}
        #: One lock per server, shared by every :class:`IngestHandle`.
        self._ingest_lock = threading.Lock()
        self._ingest_handle: Optional[IngestHandle] = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _charge_disclosure(
        self, device_ids: Sequence[str], claimed_loss: float
    ) -> None:
        """Add ``claimed_loss`` per report to the composition bound.

        Batches are overwhelmingly first contact — every id unique in
        the batch and never seen before — so the common case is one
        C-level merge appending each device with total ``0.0 + loss``;
        any repeat falls back to the per-id walk.  Both paths write the
        same totals in the same dict order.
        """
        disclosure = self._disclosure
        fresh = dict.fromkeys(device_ids, 0.0 + claimed_loss)
        if len(fresh) == len(device_ids) and disclosure.keys().isdisjoint(fresh):
            disclosure.update(fresh)
            return
        get = disclosure.get
        for device_id in device_ids:
            disclosure[device_id] = get(device_id, 0.0) + claimed_loss

    def submit(self, report: Report) -> None:
        """Accept one report (idempotence is the device's concern)."""
        self._disclosure[report.device_id] = (
            self._disclosure.get(report.device_id, 0.0) + report.claimed_loss
        )
        if self.streaming:
            self._epoch_moments(report.epoch).fold(
                np.asarray([report.value], dtype=float)
            )
        else:
            self._epochs.setdefault(report.epoch, []).append(report)

    def submit_all(self, reports: Iterable[Report]) -> None:
        """Accept a batch of reports."""
        for r in reports:
            self.submit(r)

    def submit_array(
        self,
        epoch: int,
        values: np.ndarray,
        claimed_loss: float,
        device_ids: Optional[Sequence[str]] = None,
        donate: bool = False,
    ) -> None:
        """Accept one epoch batch as an array — no per-report objects.

        This is the sharded-fleet fast path: one call per (epoch, shard)
        with the shard's privatized values.  In retain mode
        ``device_ids`` is required (reports must stay materializable and
        the disclosure bound per-device exact).  In streaming mode ids
        may be omitted; the caller then records the composition bound in
        bulk via :meth:`record_claimed_losses` (the fleet runner knows
        every device's report count up front from the dropout masks).

        ``donate=True`` is the zero-copy contract of the shared-memory
        data plane: the caller hands over a buffer it will *invalidate*
        after the call (an shm view whose block gets unlinked), and the
        server promises to hold no reference to it on return.  Streaming
        mode satisfies that for free — the fold consumes the view
        immediately; retain mode takes its own copy before storing.
        """
        values = np.asarray(values, dtype=float).reshape(-1)
        if self.streaming:
            if device_ids is not None:
                self._charge_disclosure(device_ids, claimed_loss)
            self._epoch_moments(epoch).fold(values)
            return
        if device_ids is None:
            raise ConfigurationError(
                "retain-mode submit_array needs device_ids (reports must stay "
                "materializable); pass ids or construct the server with "
                "streaming=True"
            )
        if len(device_ids) != values.size:
            raise ConfigurationError(
                f"device_ids ({len(device_ids)}) and values ({values.size}) disagree"
            )
        self._charge_disclosure(device_ids, claimed_loss)
        if donate:
            # The caller's buffer dies after this call; retained state
            # must be server-owned memory.
            values = np.array(values, dtype=float, copy=True)
        self._epochs.setdefault(epoch, []).append(
            _ReportBatch(
                device_ids=list(device_ids),
                values=values,
                claimed_loss=float(claimed_loss),
            )
        )

    def submit_counts(
        self,
        epoch: int,
        counts: np.ndarray,
        n_reports: int,
        claimed_loss: float,
        device_ids: Optional[Sequence[str]] = None,
        donate: bool = False,
    ) -> None:
        """Accept one epoch batch of categorical *support counts*.

        The categorical analogue of :meth:`submit_array`: the client (or
        shard worker) aggregates its reports into the O(d) support-count
        vector via ``mechanism.support_counts`` and ships only that —
        the vector-valued generalization of the streaming fold, and the
        only categorical submission path (raw categorical reports are
        never retained server-side, in either mode).  ``device_ids`` is
        optional exactly as in streaming ``submit_array``; bulk callers
        use :meth:`record_claimed_losses` instead.

        ``donate=True`` has the same contract as on :meth:`submit_array`
        (caller invalidates the buffer after the call).  The count fold
        is additive and consumes the vector immediately, so donation is
        always zero-copy here; the flag exists so shm callers state the
        ownership transfer explicitly.
        """
        counts = np.asarray(counts, dtype=np.int64).reshape(-1)
        if counts.size < 2:
            raise ConfigurationError("support counts need >= 2 categories")
        if n_reports <= 0:
            raise ConfigurationError("submit_counts needs a positive report count")
        if counts.min() < 0:
            raise ConfigurationError("support counts must be nonnegative")
        bucket = self._categories.get(epoch)
        if bucket is None:
            bucket = self._categories[epoch] = _EpochCategoryCounts(counts.size)
        elif bucket.counts.size != counts.size:
            raise ConfigurationError(
                f"epoch {epoch} categorical domain changed: "
                f"{bucket.counts.size} -> {counts.size} categories"
            )
        bucket.fold(counts, n_reports)
        if device_ids is not None:
            self._charge_disclosure(device_ids, claimed_loss)

    def record_claimed_losses(self, losses: Mapping[str, float]) -> None:
        """Bulk-add per-device claimed losses to the disclosure bound.

        Used by the sharded streaming runner: instead of shipping device
        ids with every epoch batch, it accumulates each device's total
        claimed loss (report count × per-report bound, both known from
        the dropout masks) and records it once per run.
        """
        for device_id, loss in losses.items():
            self._disclosure[device_id] = self._disclosure.get(device_id, 0.0) + float(
                loss
            )

    # ------------------------------------------------------------------
    # Epoch access
    # ------------------------------------------------------------------
    def _epoch_moments(self, epoch: int) -> _EpochMoments:
        moments = self._moments.get(epoch)
        if moments is None:
            moments = self._moments[epoch] = _EpochMoments(self.count_thresholds)
        return moments

    @property
    def epochs(self) -> List[int]:
        """Epochs with at least one report, ascending."""
        return sorted(self._moments if self.streaming else self._epochs)

    @property
    def n_retained_reports(self) -> int:
        """Reports currently held in memory — 0 in streaming mode.

        This is the quantity the O(epochs)-memory claim is tested on:
        a streaming server retains no reports no matter how many were
        submitted, a retaining server holds every one.
        """
        return sum(
            1 if isinstance(item, Report) else int(item.values.size)
            for items in self._epochs.values()
            for item in items
        )

    def _require_epoch(self, epoch: int) -> None:
        known = self._moments if self.streaming else self._epochs
        if epoch not in known:
            raise ConfigurationError(f"no reports for epoch {epoch}")

    def _require_retained(self, what: str) -> None:
        if self.streaming:
            raise ConfigurationError(
                f"{what} needs the raw reports, which a streaming server does "
                "not retain; construct AggregationServer(streaming=False) or "
                "use the moment-based queries (summarize, count_above on "
                "registered thresholds, moments)"
            )

    def reports(self, epoch: int) -> List[Report]:
        """All reports of an epoch (retain mode only).

        Batch submissions are materialized into ``Report`` objects on
        demand, in submission order — the storage is columnar, the API
        is unchanged.
        """
        self._require_retained("reports()")
        self._require_epoch(epoch)
        out: List[Report] = []
        for item in self._epochs[epoch]:
            if isinstance(item, Report):
                out.append(item)
            else:
                out.extend(
                    Report(
                        device_id=device_id,
                        epoch=epoch,
                        value=float(value),
                        claimed_loss=item.claimed_loss,
                    )
                    for device_id, value in zip(item.device_ids, item.values)
                )
        return out

    def values(self, epoch: int) -> np.ndarray:
        """Reported values of an epoch (retain mode only)."""
        self._require_retained("values()")
        self._require_epoch(epoch)
        chunks = [
            np.asarray([item.value]) if isinstance(item, Report) else item.values
            for item in self._epochs[epoch]
        ]
        return np.concatenate(chunks) if chunks else np.zeros(0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def summarize(self, epoch: int) -> EpochSummary:
        """Aggregate statistics for one epoch (either mode)."""
        self._require_epoch(epoch)
        if self.streaming:
            m = self._moments[epoch]
            variance = m.m2 / m.n if m.n else 0.0
            debiased = (
                max(variance - 2.0 * self.noise_scale * self.noise_scale, 0.0)
                if self.noise_scale is not None and m.n > 1
                else None
            )
            return EpochSummary(
                epoch=epoch,
                n_reports=m.n,
                n_devices=m.n,
                mean=m.mean,
                median=float("nan"),
                variance=variance,
                variance_debiased=debiased,
            )
        reports = self.reports(epoch)
        vals = self.values(epoch)
        debiased = (
            debiased_variance(vals, self.noise_scale)
            if self.noise_scale is not None and vals.size > 1
            else None
        )
        return EpochSummary(
            epoch=epoch,
            n_reports=int(vals.size),
            n_devices=len({r.device_id for r in reports}),
            mean=float(vals.mean()),
            median=float(np.median(vals)),
            variance=float(vals.var()),
            variance_debiased=debiased,
        )

    def moments(self, epoch: int) -> Dict[str, object]:
        """Streaming-mode moment snapshot (count/mean/m2/min/max/count_above)."""
        if not self.streaming:
            raise ConfigurationError(
                "moments() is the streaming-mode accessor; a retaining server "
                "answers from the raw reports (values/summarize)"
            )
        self._require_epoch(epoch)
        return self._moments[epoch].snapshot()

    def count_above(self, epoch: int, threshold: float) -> int:
        """Counting query on an epoch's reports.

        Streaming mode only answers for thresholds registered at
        construction (``count_thresholds=...``) — the fold kept those
        counters; anything else would need the discarded reports.
        """
        if self.streaming:
            self._require_epoch(epoch)
            counters = self._moments[epoch].count_above
            key = float(threshold)
            if key not in counters:
                raise ConfigurationError(
                    f"threshold {threshold!r} was not registered at construction "
                    f"(count_thresholds={sorted(counters)}); a streaming server "
                    "only keeps pre-registered count-above counters"
                )
            return counters[key]
        return int(np.count_nonzero(self.values(epoch) > threshold))

    # ------------------------------------------------------------------
    # Categorical queries (support counts submitted via submit_counts)
    # ------------------------------------------------------------------
    @property
    def categorical_epochs(self) -> List[int]:
        """Epochs with categorical support counts, ascending."""
        return sorted(self._categories)

    def category_counts(self, epoch: int) -> Tuple[np.ndarray, int]:
        """``(support counts, n reports)`` of one categorical epoch."""
        bucket = self._categories.get(epoch)
        if bucket is None:
            raise ConfigurationError(f"no categorical counts for epoch {epoch}")
        return bucket.counts.copy(), bucket.n

    def frequency_estimates(self, epoch: int, mechanism) -> FrequencyEstimate:
        """Unbiased per-category frequency estimates for one epoch.

        ``mechanism`` supplies the realized support channel ``(p, q)``
        (any :class:`~repro.mechanisms.categorical.CategoricalMechanism`
        — the server needs only its public metadata, never its URNG).
        """
        counts, n = self.category_counts(epoch)
        return estimate_from_counts(mechanism, counts, n)

    def mean_trend(self) -> List[float]:
        """Per-epoch means across all collected epochs."""
        if self.streaming:
            return [self._moments[e].mean for e in self.epochs]
        return [float(self.values(e).mean()) for e in self.epochs]

    # ------------------------------------------------------------------
    # Ingestion endpoints
    # ------------------------------------------------------------------
    def ingest_handle(self) -> IngestHandle:
        """The server's thread-safe submission facade (one per server).

        Cached so every caller shares the same lock; see
        :class:`IngestHandle`.
        """
        if self._ingest_handle is None:
            self._ingest_handle = IngestHandle(self, self._ingest_lock)
        return self._ingest_handle

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state snapshot — the service's ``snapshot`` reply.

        Per-epoch aggregates in both modes (streaming: the exact moment
        state; retain: the summary statistics), categorical support
        counts, and the retention tally.  Every number is derived from
        folded state only, so a snapshot of a streaming server fed over
        the socket is comparable field-for-field — bit-for-bit for the
        float moments — with one fed in-process with the same batches in
        the same order.
        """
        epochs: Dict[str, Dict[str, object]] = {}
        for epoch in self.epochs:
            if self.streaming:
                epochs[str(epoch)] = self._moments[epoch].snapshot()
            else:
                s = self.summarize(epoch)
                epochs[str(epoch)] = {
                    "count": s.n_reports,
                    "n_devices": s.n_devices,
                    "mean": s.mean,
                    "median": s.median,
                    "variance": s.variance,
                }
        categorical: Dict[str, Dict[str, object]] = {}
        for epoch in self.categorical_epochs:
            counts, n = self.category_counts(epoch)
            categorical[str(epoch)] = {
                "counts": [int(c) for c in counts],
                "n_reports": n,
            }
        return {
            "streaming": self.streaming,
            "epochs": epochs,
            "categorical_epochs": categorical,
            "n_retained_reports": self.n_retained_reports,
            "n_devices_tracked": len(self._disclosure),
        }

    # ------------------------------------------------------------------
    def worst_case_disclosure(self, device_id: str) -> float:
        """Server-side composition bound on one device's disclosure.

        Sums the claimed per-report loss over *every* report the device
        sent.  The server cannot tell cached replays (which add no loss)
        from fresh reports, so this is deliberately conservative: it is
        always ≥ the device's own accountant (which is the authoritative
        number — privacy is enforced on-device).  The total is kept as a
        running per-device sum, so it works identically in streaming
        mode, where the reports themselves are gone.
        """
        return float(self._disclosure.get(device_id, 0.0))
