"""Wire protocol between LDP devices and the untrusted aggregator.

In the local setting (paper Fig. 2(b)) there is no trusted curator: the
only thing that ever leaves a device is a privatized report.  The types
here make that boundary explicit — a :class:`Report` carries the noised
value, the device's claimed per-report loss, and epoch bookkeeping, and
*nothing else*.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError

__all__ = ["Report"]


@dataclasses.dataclass(frozen=True)
class Report:
    """One privatized reading submitted to the aggregator."""

    #: Opaque device identifier (pseudonymous; linkability is a policy
    #: question orthogonal to LDP).
    device_id: str
    #: Collection round the report belongs to.
    epoch: int
    #: The privatized value — the only data-bearing field.
    value: float
    #: The per-report worst-case privacy loss the device claims (the
    #: aggregator can use it for utility weighting, not for privacy —
    #: privacy is enforced on-device).
    claimed_loss: float

    def __post_init__(self) -> None:
        if not self.device_id:
            raise ConfigurationError("device_id must be nonempty")
        if self.epoch < 0:
            raise ConfigurationError("epoch must be nonnegative")
        if self.claimed_loss <= 0:
            raise ConfigurationError("claimed_loss must be positive")
