"""The local-DP system substrate (paper Fig. 2(b)): devices that only
emit privatized reports, the untrusted aggregation server, and a fleet
simulation harness."""

from .device import Device
from .fleet import FleetResult, run_fleet
from .protocol import Report
from .server import AggregationServer, EpochSummary

__all__ = [
    "Device",
    "FleetResult",
    "run_fleet",
    "Report",
    "AggregationServer",
    "EpochSummary",
]
