"""Simulated LDP sensor device.

A :class:`Device` owns a raw sensor stream and a local mechanism; the
*only* way data leaves it is :meth:`report`, which privatizes first.  An
optional on-device budget mirrors DP-Box semantics: after exhaustion the
device replays its cached report (no new loss) until :meth:`replenish`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import LocalMechanism
from ..privacy.accountant import BudgetAccountant
from .protocol import Report

__all__ = ["Device"]


class Device:
    """A sensor node that only ever emits privatized reports."""

    def __init__(
        self,
        device_id: str,
        mechanism: LocalMechanism,
        budget: Optional[float] = None,
    ):
        if not device_id:
            raise ConfigurationError("device_id must be nonempty")
        self.device_id = device_id
        self._mechanism = mechanism
        self._accountant = BudgetAccountant(budget) if budget is not None else None
        self._cached: Optional[float] = None
        self.n_fresh = 0
        self.n_cached = 0

    # ------------------------------------------------------------------
    @property
    def per_report_loss(self) -> float:
        """The mechanism's certified per-report loss bound."""
        return self._mechanism.claimed_loss_bound

    @property
    def remaining_budget(self) -> Optional[float]:
        """On-device budget left (None when budgeting is disabled)."""
        return self._accountant.remaining if self._accountant else None

    def replenish(self) -> None:
        """Start a new accounting period."""
        if self._accountant:
            self._accountant.reset()

    # ------------------------------------------------------------------
    def report(self, raw_value: float, epoch: int) -> Report:
        """Privatize one reading and package it for the aggregator."""
        if self._accountant is not None and not self._accountant.can_spend(
            self.per_report_loss
        ):
            if self._cached is None:
                raise ConfigurationError(
                    f"device {self.device_id}: budget exhausted before any report"
                )
            self.n_cached += 1
            return Report(
                device_id=self.device_id,
                epoch=epoch,
                value=self._cached,
                claimed_loss=self.per_report_loss,
            )
        noised = float(self._mechanism.privatize(np.asarray([raw_value]))[0])
        if self._accountant is not None:
            self._accountant.spend(self.per_report_loss)
        self._cached = noised
        self.n_fresh += 1
        return Report(
            device_id=self.device_id,
            epoch=epoch,
            value=noised,
            claimed_loss=self.per_report_loss,
        )
