"""Simulated LDP sensor device.

A :class:`Device` owns a raw sensor stream and a local mechanism; the
*only* way data leaves it is :meth:`report`, which privatizes through
the release pipeline.  An optional on-device budget mirrors DP-Box
semantics via :class:`~repro.runtime.FlatCharge`: after exhaustion the
device replays its cached report (no new loss) until :meth:`replenish`.
Every report is one :class:`~repro.runtime.ReleaseEvent` on the
mechanism's pipeline, with the device id as the event channel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import BudgetExhaustedError, ConfigurationError
from ..mechanisms.base import LocalMechanism
from ..privacy.accountant import BudgetAccountant
from ..runtime import FlatCharge, ReplayCache
from .protocol import Report

__all__ = ["Device"]


class Device:
    """A sensor node that only ever emits privatized reports."""

    def __init__(
        self,
        device_id: str,
        mechanism: LocalMechanism,
        budget: Optional[float] = None,
    ):
        if not device_id:
            raise ConfigurationError("device_id must be nonempty")
        self.device_id = device_id
        self._mechanism = mechanism
        self._accountant = BudgetAccountant(budget) if budget is not None else None
        self._cache = ReplayCache()
        self.n_fresh = 0
        self.n_cached = 0

    # ------------------------------------------------------------------
    @property
    def per_report_loss(self) -> float:
        """The mechanism's certified per-report loss bound."""
        return self._mechanism.claimed_loss_bound

    @property
    def remaining_budget(self) -> Optional[float]:
        """On-device budget left (None when budgeting is disabled)."""
        return self._accountant.remaining if self._accountant else None

    def replenish(self) -> None:
        """Start a new accounting period."""
        if self._accountant:
            self._accountant.reset()

    # ------------------------------------------------------------------
    def report(self, raw_value: float, epoch: int) -> Report:
        """Privatize one reading and package it for the aggregator."""
        accounting = (
            FlatCharge(self._accountant, self.per_report_loss, self._cache)
            if self._accountant is not None
            else None
        )
        try:
            outcome = self._mechanism.release(
                np.asarray([raw_value]),
                accounting=accounting,
                channel=self.device_id,
            )
        except BudgetExhaustedError as exc:
            raise ConfigurationError(
                f"device {self.device_id}: budget exhausted before any report"
            ) from exc
        from_cache = bool(outcome.cache_hits[0])
        self.n_cached += int(from_cache)
        self.n_fresh += int(not from_cache)
        return Report(
            device_id=self.device_id,
            epoch=epoch,
            value=float(outcome.values[0]),
            claimed_loss=self.per_report_loss,
        )
