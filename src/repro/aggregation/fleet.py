"""Fleet simulation: many devices, one aggregator, several epochs.

Convenience harness tying the aggregation substrate together: build N
devices sharing a mechanism configuration, stream per-epoch true values
through them (with optional straggling), and collect the server's
estimates next to the ground truth.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms import SensorSpec, make_mechanism
from .device import Device
from .server import AggregationServer

__all__ = ["FleetResult", "run_fleet"]


@dataclasses.dataclass(frozen=True)
class FleetResult:
    """Outcome of a fleet simulation."""

    server: AggregationServer
    devices: List[Device]
    #: Per-epoch true means (over the devices that reported).
    true_means: List[float]
    #: Per-epoch estimated means.
    estimated_means: List[float]

    @property
    def mean_abs_error(self) -> float:
        """MAE of the per-epoch mean estimates."""
        t = np.asarray(self.true_means)
        e = np.asarray(self.estimated_means)
        return float(np.abs(t - e).mean())


def run_fleet(
    true_values: np.ndarray,
    sensor: SensorSpec,
    epsilon: float,
    arm: str = "thresholding",
    device_budget: Optional[float] = None,
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    **mechanism_kwargs,
) -> FleetResult:
    """Simulate a fleet over a (n_epochs, n_devices) true-value matrix.

    ``dropout`` is the per-epoch probability a device straggles (sends
    nothing); the server aggregates whoever reported.
    """
    true_values = np.asarray(true_values, dtype=float)
    if true_values.ndim != 2:
        raise ConfigurationError("true_values must be (n_epochs, n_devices)")
    if not 0.0 <= dropout < 1.0:
        raise ConfigurationError("dropout must be in [0, 1)")
    # dplint: allow[DPL001] -- dropout/straggler simulation randomness only;
    # release noise comes from each Device's mechanism source.
    rng = rng or np.random.default_rng()
    n_epochs, n_devices = true_values.shape
    mechanism_kwargs.setdefault("input_bits", 14)
    devices = [
        Device(
            f"dev-{i:04d}",
            make_mechanism(arm, sensor, epsilon, **mechanism_kwargs),
            budget=device_budget,
        )
        for i in range(n_devices)
    ]
    lam = sensor.d / epsilon if arm != "rr" else None
    server = AggregationServer(noise_scale=lam)
    true_means: List[float] = []
    for epoch in range(n_epochs):
        reporting = rng.random(n_devices) >= dropout
        if not reporting.any():
            reporting[int(rng.integers(n_devices))] = True  # never a silent epoch
        for i in np.flatnonzero(reporting):
            server.submit(devices[i].report(float(true_values[epoch, i]), epoch))
        true_means.append(float(true_values[epoch, reporting].mean()))
    estimated = [server.summarize(e).mean for e in server.epochs]
    return FleetResult(
        server=server,
        devices=devices,
        true_means=true_means,
        estimated_means=estimated,
    )
