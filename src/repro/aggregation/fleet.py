"""Fleet simulation: many devices, one aggregator, several epochs.

Convenience harness tying the aggregation substrate together: build N
devices sharing one mechanism, stream per-epoch true values through them
(with optional straggling), and collect the server's estimates next to
the ground truth.

Two execution paths produce **bit-identical** reports for single-draw
guards (thresholding / baseline / rr) when the mechanism consumes a
:class:`~repro.rng.urng.SplitStreamSource` (``source_seed=...``):

* ``batched=True`` (default) — each epoch is ONE pipeline release: the
  reporting devices' readings privatize as a single array operation and
  per-device budgets charge vectorized via
  :class:`~repro.runtime.ArrayCharge`.  One ``ReleaseEvent`` per epoch.
* ``batched=False`` — the legacy per-device scalar loop through
  :meth:`Device.report <repro.aggregation.device.Device.report>`
  (one event per device per epoch), kept as the reference semantics.

Bit-identity holds because a split-stream PCG64 fills a size-n batch
element-by-element exactly like n sequential size-1 draws; resampling's
redraw interleaving differs between the paths, so its outputs agree only
in distribution.  ``benchmarks/bench_system_fleet.py`` asserts the
equality and the >= 5x batched speedup at 10k devices.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..errors import BudgetExhaustedError, ConfigurationError
from ..mechanisms import SensorSpec, make_mechanism
from ..rng.urng import SplitStreamSource, audited_generator
from ..runtime import ArrayCharge, ReleasePipeline
from .device import Device
from .protocol import Report
from .server import AggregationServer

__all__ = ["FleetResult", "run_fleet"]


@dataclasses.dataclass(frozen=True)
class FleetResult:
    """Outcome of a fleet simulation."""

    server: AggregationServer
    devices: List[Device]
    #: Per-epoch true means (over the devices that reported).
    true_means: List[float]
    #: Per-epoch estimated means.
    estimated_means: List[float]
    #: Sharded runs only: per-shard trace counters merged in shard order.
    counters: Optional[object] = None
    #: Sharded runs only: the shard plan the run executed under.
    shard_plan: Optional[object] = None
    #: Sharded runs with ``measure_ipc=True`` only: measured pipe payload
    #: (pickled tasks + results) in bytes.
    ipc_bytes: Optional[int] = None

    @property
    def mean_abs_error(self) -> float:
        """MAE of the per-epoch mean estimates."""
        t = np.asarray(self.true_means)
        e = np.asarray(self.estimated_means)
        return float(np.abs(t - e).mean())


def run_fleet(
    true_values: np.ndarray,
    sensor: SensorSpec,
    epsilon: float,
    arm: str = "thresholding",
    device_budget: Optional[float] = None,
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    batched: bool = True,
    source_seed: Optional[int] = None,
    pipeline: Optional[ReleasePipeline] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    streaming: bool = False,
    **mechanism_kwargs,
) -> FleetResult:
    """Simulate a fleet over a (n_epochs, n_devices) true-value matrix.

    ``dropout`` is the per-epoch probability a device straggles (sends
    nothing); the server aggregates whoever reported.  ``source_seed``
    seeds a :class:`~repro.rng.urng.SplitStreamSource` (or the ideal
    arm's generator) so the two execution paths can be compared on the
    same noise stream; ``pipeline`` isolates the emitted events.

    Passing ``workers``, ``shards`` or ``streaming`` delegates to the
    multi-core sharded runner
    (:func:`repro.parallel.run_fleet_sharded`): the device axis splits
    into a fixed shard plan, each shard privatizes on its own
    ``SeedSequence``-spawned audited stream, and results merge in shard
    order — bit-identical for any worker count.  Note that a sharded
    run's noise streams differ from the unsharded ones unless
    ``shards=1`` (the shard plan is part of the reproducibility key).
    """
    if workers is not None or shards is not None or streaming:
        if not batched:
            raise ConfigurationError(
                "sharded execution batches each shard-epoch; batched=False "
                "(the scalar reference loop) cannot be sharded"
            )
        from ..parallel.runner import run_fleet_sharded

        return run_fleet_sharded(
            true_values,
            sensor,
            epsilon,
            arm=arm,
            device_budget=device_budget,
            dropout=dropout,
            rng=rng,
            source_seed=source_seed,
            pipeline=pipeline,
            workers=workers if workers is not None else 1,
            shards=shards,
            streaming=streaming,
            **mechanism_kwargs,
        )
    true_values = np.asarray(true_values, dtype=float)
    if true_values.ndim != 2:
        raise ConfigurationError("true_values must be (n_epochs, n_devices)")
    if not 0.0 <= dropout < 1.0:
        raise ConfigurationError("dropout must be in [0, 1)")
    # dplint: allow[DPL001] -- dropout/straggler simulation randomness only;
    # release noise comes from the shared mechanism's audited source.
    rng = rng or np.random.default_rng()
    n_epochs, n_devices = true_values.shape
    if arm != "ideal":
        mechanism_kwargs.setdefault("input_bits", 14)
        if source_seed is not None:
            mechanism_kwargs.setdefault("source", SplitStreamSource(source_seed))
    elif source_seed is not None:
        mechanism_kwargs.setdefault("rng", audited_generator(source_seed))
    if pipeline is not None:
        mechanism_kwargs.setdefault("pipeline", pipeline)
    # One shared mechanism: all devices draw, in device order, from the
    # same audited noise stream — the invariant both paths preserve.
    mechanism = make_mechanism(arm, sensor, epsilon, **mechanism_kwargs)
    if hasattr(mechanism, "rng") and hasattr(mechanism.rng, "kernel"):
        # Resolve the codebook kernel (shared, process-wide) before the
        # epoch loop so every epoch privatizes as pure table gathers.
        mechanism.rng.kernel
    devices = [
        Device(f"dev-{i:04d}", mechanism, budget=device_budget)
        for i in range(n_devices)
    ]
    lam = sensor.d / epsilon if arm != "rr" else None
    server = AggregationServer(noise_scale=lam)
    true_means: List[float] = []

    # Vectorized per-device budget state (batched path only).
    loss = mechanism.claimed_loss_bound
    remaining = (
        np.full(n_devices, float(device_budget)) if device_budget is not None else None
    )
    cached_codes = np.full(n_devices, np.nan)
    n_fresh = np.zeros(n_devices, dtype=np.int64)
    n_cached = np.zeros(n_devices, dtype=np.int64)

    for epoch in range(n_epochs):
        reporting = rng.random(n_devices) >= dropout
        if not reporting.any():
            reporting[int(rng.integers(n_devices))] = True  # never a silent epoch
        if batched:
            idx = np.flatnonzero(reporting)
            accounting = (
                ArrayCharge(remaining, cached_codes, loss, index=idx)
                if remaining is not None
                else None
            )
            try:
                outcome = mechanism.release(
                    true_values[epoch, idx],
                    accounting=accounting,
                    channel=f"epoch-{epoch}",
                )
            except BudgetExhaustedError as exc:
                raise ConfigurationError(str(exc)) from exc
            hits = outcome.cache_hits
            n_fresh[idx] += ~hits
            n_cached[idx] += hits
            server.submit_all(
                Report(
                    device_id=devices[i].device_id,
                    epoch=epoch,
                    value=float(outcome.values[j]),
                    claimed_loss=loss,
                )
                for j, i in enumerate(idx)
            )
        else:
            for i in np.flatnonzero(reporting):
                server.submit(devices[i].report(float(true_values[epoch, i]), epoch))
        true_means.append(float(true_values[epoch, reporting].mean()))

    if batched:
        # Fold the vectorized state back into the Device objects so the
        # two paths expose the same post-run API (n_fresh, budgets, ...).
        for i, dev in enumerate(devices):
            dev.n_fresh = int(n_fresh[i])
            dev.n_cached = int(n_cached[i])
            if remaining is not None and dev._accountant is not None:
                dev._accountant._spent = float(device_budget) - float(remaining[i])
            if not np.isnan(cached_codes[i]):
                dev._cache.code = cached_codes[i]
    estimated = [server.summarize(e).mean for e in server.epochs]
    return FleetResult(
        server=server,
        devices=devices,
        true_means=true_means,
        estimated_means=estimated,
    )
