"""Synthetic value generators with controllable shape and moments.

The environment has no network access, so the seven UCI datasets of paper
Table I are substituted with deterministic synthetic equivalents (see
DESIGN.md §4).  Every mechanism/utility result in the paper depends only
on the entry count, the declared range ``d``, and the dispersion/shape of
the data — which these generators control directly.

All generators clip into ``[lo, hi]`` and then apply an affine moment
correction so the realized mean/std land close to the requested targets
without leaving the range.
"""

from __future__ import annotations

# dplint: allow-file[DPL001] -- dataset synthesis only: these draws stand
# in for UCI sensor recordings and never feed a privatized release.
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "truncated_gaussian",
    "bimodal_gaussian",
    "skewed_lognormal",
    "decaying_exponential",
    "clustered_uniform",
]


def _moment_correct(
    values: np.ndarray, lo: float, hi: float, mean: float, std: float
) -> np.ndarray:
    """Affine-correct toward the target moments, staying inside the range."""
    cur_std = values.std()
    if cur_std <= 0:
        return np.clip(np.full_like(values, mean), lo, hi)
    scaled = (values - values.mean()) * (std / cur_std) + mean
    return np.clip(scaled, lo, hi)


def _validate(lo: float, hi: float, n: int) -> None:
    if hi <= lo:
        raise ConfigurationError("hi must exceed lo")
    if n < 1:
        raise ConfigurationError("need at least one sample")


def truncated_gaussian(
    n: int,
    lo: float,
    hi: float,
    mean: float,
    std: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Gaussian clipped into ``[lo, hi]`` (e.g. blood-pressure-like data)."""
    _validate(lo, hi, n)
    rng = rng or np.random.default_rng()
    values = rng.normal(mean, std, size=n)
    return _moment_correct(values, lo, hi, mean, std)


def bimodal_gaussian(
    n: int,
    lo: float,
    hi: float,
    mean: float,
    std: float,
    separation: float = 2.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Two Gaussian modes ``separation·std`` apart (activity-like data)."""
    _validate(lo, hi, n)
    rng = rng or np.random.default_rng()
    offset = 0.5 * separation * std
    modes = rng.integers(0, 2, size=n)
    centers = np.where(modes == 0, mean - offset, mean + offset)
    values = rng.normal(centers, 0.5 * std)
    return _moment_correct(values, lo, hi, mean, std)


def skewed_lognormal(
    n: int,
    lo: float,
    hi: float,
    mean: float,
    std: float,
    skew: float = 0.6,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Right-skewed values (MPG-like data: a long high tail)."""
    _validate(lo, hi, n)
    if skew <= 0:
        raise ConfigurationError("skew must be positive")
    rng = rng or np.random.default_rng()
    values = rng.lognormal(mean=0.0, sigma=skew, size=n)
    return _moment_correct(values, lo, hi, mean, std)


def decaying_exponential(
    n: int,
    lo: float,
    hi: float,
    mean: float,
    std: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Exponential decay from ``lo`` (sonar-range-like data)."""
    _validate(lo, hi, n)
    rng = rng or np.random.default_rng()
    values = lo + rng.exponential(scale=max(mean - lo, 1e-9), size=n)
    return _moment_correct(values, lo, hi, mean, std)


def clustered_uniform(
    n: int,
    lo: float,
    hi: float,
    mean: float,
    std: float,
    n_clusters: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Several uniform clusters across the range (WiFi-RSS-like data)."""
    _validate(lo, hi, n)
    if n_clusters < 1:
        raise ConfigurationError("need at least one cluster")
    rng = rng or np.random.default_rng()
    centers = rng.uniform(lo, hi, size=n_clusters)
    width = (hi - lo) / (4.0 * n_clusters)
    assignment = rng.integers(0, n_clusters, size=n)
    values = rng.uniform(
        centers[assignment] - width, centers[assignment] + width
    )
    return _moment_correct(values, lo, hi, mean, std)
