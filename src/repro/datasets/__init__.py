"""Evaluation datasets: synthetic Table-I substitutes and the Table-VI
halfspace classification set (see DESIGN.md §4 for the substitution
rationale)."""

from .base import DatasetStats, SensorDataset
from .halfspace import HalfspaceDataset, make_halfspace_dataset
from .registry import DATASET_CONFIGS, PAPER_DATASETS, DatasetConfig, load, load_all
from .synthetic import (
    bimodal_gaussian,
    clustered_uniform,
    decaying_exponential,
    skewed_lognormal,
    truncated_gaussian,
)

__all__ = [
    "DatasetStats",
    "SensorDataset",
    "HalfspaceDataset",
    "make_halfspace_dataset",
    "DATASET_CONFIGS",
    "PAPER_DATASETS",
    "DatasetConfig",
    "load",
    "load_all",
    "bimodal_gaussian",
    "clustered_uniform",
    "decaying_exponential",
    "skewed_lognormal",
    "truncated_gaussian",
]
