"""Halfspace-separable synthetic classification data (paper Table VI).

"We generated a synthetic dataset for binary classification, which is
separable by a halfspace."  Features live in ``[-1, 1]^dim`` so each
coordinate can be privatized with the numeric LDP mechanisms; labels are
the sign of an affine function, with an optional margin that removes
points too close to the boundary (making the clean problem exactly
learnable, as in the paper where accuracy approaches 100%).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import SensorSpec

__all__ = ["HalfspaceDataset", "make_halfspace_dataset"]


@dataclasses.dataclass(frozen=True)
class HalfspaceDataset:
    """Features in ``[-1, 1]^dim`` with ±1 labels from a hidden halfspace."""

    features: np.ndarray  # (n, dim)
    labels: np.ndarray  # (n,), values in {-1, +1}
    weight: np.ndarray  # hidden (dim,) normal vector
    bias: float

    @property
    def n(self) -> int:
        """Number of examples."""
        return int(self.features.shape[0])

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return int(self.features.shape[1])

    @property
    def feature_sensor(self) -> SensorSpec:
        """The per-coordinate sensor range used for LDP noising."""
        return SensorSpec(-1.0, 1.0)

    def split(self, n_train: int) -> Tuple["HalfspaceDataset", "HalfspaceDataset"]:
        """Deterministic train/test split (first ``n_train`` rows train)."""
        if not 0 < n_train < self.n:
            raise ConfigurationError("n_train must be in (0, n)")
        mk = lambda sl: HalfspaceDataset(  # noqa: E731 - tiny local helper
            self.features[sl], self.labels[sl], self.weight, self.bias
        )
        return mk(slice(0, n_train)), mk(slice(n_train, self.n))


def make_halfspace_dataset(
    n: int,
    dim: int = 2,
    margin: float = 0.05,
    seed: Optional[int] = 7,
    bias: float = 0.0,
) -> HalfspaceDataset:
    """Sample a separable dataset with a margin around the boundary.

    Points with ``|w·x + b| < margin·||w||`` are rejected and resampled,
    so the classes are linearly separable with margin.  The default
    ``bias=0`` puts the boundary through the origin, which is the setting
    where training on heavily noised features still recovers the
    classifier direction (and hence the paper's Table-VI shape); an
    offset boundary makes the learned intercept dominate the noise-shrunk
    weights.
    """
    if n < 2:
        raise ConfigurationError("need at least two examples")
    if dim < 1:
        raise ConfigurationError("dim must be >= 1")
    if margin < 0:
        raise ConfigurationError("margin must be nonnegative")
    # dplint: allow[DPL001] -- synthetic ML dataset generation only.
    rng = np.random.default_rng(seed)
    w = rng.normal(size=dim)
    w /= np.linalg.norm(w)
    b = float(bias)
    feats = np.empty((0, dim))
    while feats.shape[0] < n:
        cand = rng.uniform(-1.0, 1.0, size=(2 * n, dim))
        score = cand @ w + b
        keep = np.abs(score) >= margin
        feats = np.vstack([feats, cand[keep]])
    feats = feats[:n]
    labels = np.where(feats @ w + b > 0, 1, -1)
    # Guarantee both classes are present (rejection could be one-sided
    # for extreme biases).
    if len(np.unique(labels)) < 2:
        raise ConfigurationError("degenerate halfspace produced one class; reseed")
    return HalfspaceDataset(features=feats, labels=labels, weight=w, bias=b)
