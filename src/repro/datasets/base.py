"""Dataset containers.

A :class:`SensorDataset` bundles a value vector with the *declared* sensor
range used for privacy calibration.  The declared range is deliberately a
property of the sensor (its physical limits), not of the realized data —
scaling noise to the empirical min/max would itself leak information.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import SensorSpec

__all__ = ["SensorDataset", "DatasetStats"]


@dataclasses.dataclass(frozen=True)
class DatasetStats:
    """Table-I row: entry count, extremes, mean, standard deviation."""

    entries: int
    minimum: float
    maximum: float
    mean: float
    std: float

    def row(self) -> str:
        return (
            f"{self.entries:>7d}  [{self.minimum:.4g}, {self.maximum:.4g}]  "
            f"mean {self.mean:.4g}  std {self.std:.4g}"
        )


@dataclasses.dataclass(frozen=True)
class SensorDataset:
    """A named value vector plus its declared sensor range."""

    name: str
    values: np.ndarray
    sensor: SensorSpec
    description: str = ""

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float).ravel()
        object.__setattr__(self, "values", values)
        if values.size == 0:
            raise ConfigurationError("dataset is empty")
        if np.any(~self.sensor.contains(values)):
            raise ConfigurationError(
                f"dataset {self.name!r} has values outside its declared range"
            )

    @property
    def n(self) -> int:
        """Number of entries."""
        return int(self.values.size)

    def stats(self) -> DatasetStats:
        """Empirical statistics (the Table-I columns)."""
        v = self.values
        return DatasetStats(
            entries=self.n,
            minimum=float(v.min()),
            maximum=float(v.max()),
            mean=float(v.mean()),
            std=float(v.std()),
        )

    def subsample(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> "SensorDataset":
        """A uniform random subsample (without replacement if possible)."""
        if n < 1:
            raise ConfigurationError("subsample size must be positive")
        # dplint: allow[DPL001] -- simulation-only subsampling of raw data.
        rng = rng or np.random.default_rng()
        replace = n > self.n
        idx = rng.choice(self.n, size=n, replace=replace)
        return SensorDataset(
            name=f"{self.name}[n={n}]",
            values=self.values[idx],
            sensor=self.sensor,
            description=self.description,
        )
