"""The seven evaluation datasets (paper Table I), synthesized.

No network access is available, so each UCI dataset is replaced by a
deterministic synthetic equivalent matched to its published entry count,
declared sensor range, mean, standard deviation, and qualitative shape
(DESIGN.md §4).  The numbers below are the UCI-documented statistics of
the attribute the paper privatizes (or our best reading of the paper's
partially corrupted Table I); they are configuration data, not
measurements.

Datasets are built lazily and deterministically: ``load(name)`` with the
same seed always returns the same values.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import SensorSpec
from .base import SensorDataset
from .synthetic import (
    bimodal_gaussian,
    clustered_uniform,
    decaying_exponential,
    skewed_lognormal,
    truncated_gaussian,
)

__all__ = ["DatasetConfig", "DATASET_CONFIGS", "PAPER_DATASETS", "load", "load_all"]


@dataclasses.dataclass(frozen=True)
class DatasetConfig:
    """Recipe for one synthetic Table-I dataset."""

    name: str
    entries: int
    lo: float
    hi: float
    mean: float
    std: float
    shape: str  # generator key
    description: str

    def generator(self) -> Callable:
        return _GENERATORS[self.shape]


_GENERATORS: Dict[str, Callable] = {
    "gaussian": truncated_gaussian,
    "bimodal": bimodal_gaussian,
    "skewed": skewed_lognormal,
    "exponential": decaying_exponential,
    "clustered": clustered_uniform,
}

#: Table-I dataset recipes.  Entry counts / ranges / moments follow the
#: UCI documentation of the privatized attribute.
DATASET_CONFIGS: Tuple[DatasetConfig, ...] = (
    DatasetConfig(
        name="auto-mpg",
        entries=398,
        lo=9.0,
        hi=46.6,
        mean=23.5,
        std=7.8,
        shape="skewed",
        description="Auto-MPG: fuel efficiency (miles per gallon), right-skewed",
    ),
    DatasetConfig(
        name="robot-sensors",
        entries=5456,
        lo=0.0,
        hi=5.0,
        mean=1.3,
        std=1.0,
        shape="exponential",
        description="Wall-following robot ultrasound ranges, decaying from 0",
    ),
    DatasetConfig(
        name="statlog-heart",
        entries=270,
        lo=94.0,
        hi=200.0,
        mean=131.3,
        std=17.8,
        shape="gaussian",
        description="Statlog (Heart): resting blood pressure, Gaussian-like",
    ),
    DatasetConfig(
        name="human-activity",
        entries=10299,
        lo=-1.0,
        hi=1.0,
        mean=-0.1,
        std=0.4,
        shape="bimodal",
        description="Smartphone human-activity feature (normalized), bimodal",
    ),
    DatasetConfig(
        name="localization-person",
        entries=164860,
        lo=-2.5,
        hi=6.5,
        mean=1.6,
        std=1.0,
        shape="clustered",
        description="Localization Data for Person Activity: tag coordinate",
    ),
    DatasetConfig(
        name="ujiindoorloc",
        entries=19937,
        lo=-7691.4,
        hi=-7300.8,
        mean=-7464.3,
        std=123.4,
        shape="clustered",
        description="UJIIndoorLoc: WiFi-localization longitude, multi-building",
    ),
    DatasetConfig(
        name="postural-transitions",
        entries=10929,
        lo=-1.0,
        hi=1.0,
        mean=0.15,
        std=0.32,
        shape="gaussian",
        description="Smartphone postural-transition feature, narrow peak",
    ),
)

#: Names in paper-table order.
PAPER_DATASETS: Tuple[str, ...] = tuple(c.name for c in DATASET_CONFIGS)

_BY_NAME: Dict[str, DatasetConfig] = {c.name: c for c in DATASET_CONFIGS}


def load(
    name: str,
    seed: int = 2018,
    entries: Optional[int] = None,
) -> SensorDataset:
    """Build one Table-I dataset deterministically.

    ``entries`` overrides the published count (used by the dataset-size
    sweeps of Figs. 14/15).
    """
    if name not in _BY_NAME:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(_BY_NAME)}"
        )
    cfg = _BY_NAME[name]
    n = cfg.entries if entries is None else int(entries)
    if n < 1:
        raise ConfigurationError("entries must be positive")
    # dplint: allow[DPL001] -- deterministic dataset materialization only.
    rng = np.random.default_rng(np.random.SeedSequence([seed, hash(name) & 0x7FFFFFFF]))
    values = cfg.generator()(n, cfg.lo, cfg.hi, cfg.mean, cfg.std, rng=rng)
    return SensorDataset(
        name=cfg.name,
        values=values,
        sensor=SensorSpec(cfg.lo, cfg.hi),
        description=cfg.description,
    )


def load_all(seed: int = 2018) -> Dict[str, SensorDataset]:
    """Build every Table-I dataset."""
    return {name: load(name, seed=seed) for name in PAPER_DATASETS}
