"""Sensor front-end substrate: ADC models, physical signal generators,
and the composed sensor node (signal → ADC → local privacy)."""

from .adc import ADC
from .node import SensorNode
from .signals import heart_rate, occupancy, power_draw, temperature_walk

__all__ = [
    "ADC",
    "SensorNode",
    "heart_rate",
    "occupancy",
    "power_draw",
    "temperature_walk",
]
