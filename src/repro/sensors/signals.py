"""Physical signal models for the sensor classes the paper motivates.

Deterministic (seeded) generators producing realistic raw streams for
the wearable / environmental / energy scenarios of the introduction:
bounded random-walk temperature, circadian heart rate with exercise
bursts, spiky household power draw, and Markov occupancy.  Each returns
plain physical-unit arrays; pair with :class:`~repro.sensors.adc.ADC`
and a mechanism (or DP-Box) via :class:`~repro.sensors.node.SensorNode`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["temperature_walk", "heart_rate", "power_draw", "occupancy"]


def _rng(seed: Optional[int]) -> np.random.Generator:
    # dplint: allow[DPL001] -- physical-signal simulation randomness only;
    # release noise comes from the mechanism attached downstream.
    return np.random.default_rng(seed)


def temperature_walk(
    n: int,
    start: float = 21.0,
    lo: float = 15.0,
    hi: float = 30.0,
    step_std: float = 0.15,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Mean-reverting bounded random walk (room temperature, °C)."""
    if n < 1:
        raise ConfigurationError("need at least one sample")
    if not lo < start < hi:
        raise ConfigurationError("start must lie strictly inside [lo, hi]")
    rng = _rng(seed)
    mid = 0.5 * (lo + hi)
    out = np.empty(n)
    t = start
    for i in range(n):
        t += rng.normal(0.0, step_std) + 0.01 * (mid - t)
        t = min(max(t, lo), hi)
        out[i] = t
    return out


def heart_rate(
    n: int,
    resting: float = 62.0,
    circadian_amplitude: float = 8.0,
    samples_per_day: int = 288,
    exercise_prob: float = 0.01,
    seed: Optional[int] = 1,
) -> np.ndarray:
    """Circadian heart rate (bpm) with occasional exercise bursts."""
    if n < 1:
        raise ConfigurationError("need at least one sample")
    rng = _rng(seed)
    t = np.arange(n)
    base = resting + circadian_amplitude * np.sin(
        2 * np.pi * t / samples_per_day - np.pi / 2
    )
    hr = base + rng.normal(0.0, 2.0, n)
    # Exercise bursts: exponential-decay elevations.
    bursts = np.flatnonzero(rng.random(n) < exercise_prob)
    for b in bursts:
        length = int(rng.integers(6, 20))
        peak = rng.uniform(40.0, 90.0)
        idx = np.arange(b, min(b + length, n))
        hr[idx] += peak * np.exp(-(idx - b) / 6.0)
    return np.clip(hr, 35.0, 205.0)


def power_draw(
    n: int,
    baseline: float = 180.0,
    appliance_prob: float = 0.03,
    seed: Optional[int] = 2,
) -> np.ndarray:
    """Household power (W): baseline + overlapping appliance pulses."""
    if n < 1:
        raise ConfigurationError("need at least one sample")
    rng = _rng(seed)
    power = np.full(n, baseline) + rng.normal(0.0, 12.0, n)
    starts = np.flatnonzero(rng.random(n) < appliance_prob)
    for s in starts:
        length = int(rng.integers(3, 30))
        load = rng.choice([800.0, 1500.0, 2200.0, 3000.0])
        power[s : s + length] += load
    return np.clip(power, 0.0, 4000.0)


def occupancy(
    n: int,
    p_arrive: float = 0.05,
    p_leave: float = 0.03,
    seed: Optional[int] = 3,
) -> np.ndarray:
    """Two-state Markov occupancy (0/1)."""
    if n < 1:
        raise ConfigurationError("need at least one sample")
    if not (0 < p_arrive < 1 and 0 < p_leave < 1):
        raise ConfigurationError("transition probabilities must be in (0, 1)")
    rng = _rng(seed)
    out = np.empty(n, dtype=int)
    state = 0
    for i in range(n):
        if state == 0 and rng.random() < p_arrive:
            state = 1
        elif state == 1 and rng.random() < p_leave:
            state = 0
        out[i] = state
    return out
