"""Sensor ADC front end.

The values DP-Box noises come from an ADC: a physical quantity mapped
onto an ``n_bits`` code grid over the sensor's full-scale range, with the
non-idealities real converters have (offset, gain error, input-referred
noise, saturation).  Modelling the front end matters for two reasons:

* the paper sizes DP-Box against "sensors with resolution up to 13 bits"
  (Section III-D) — resolution is an ADC property;
* the declared range used for privacy calibration is the ADC's full
  scale, *not* the data's empirical range — the ADC is what makes the
  declared range physically enforced (a reading simply cannot leave it).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import SensorSpec

__all__ = ["ADC"]


@dataclasses.dataclass(frozen=True)
class ADC:
    """An ``n_bits`` analog-to-digital converter over ``[v_min, v_max]``.

    Parameters
    ----------
    n_bits:
        Resolution; codes run ``0 .. 2**n_bits - 1``.
    v_min, v_max:
        Full-scale input range.  Inputs outside saturate.
    noise_std:
        Input-referred noise (standard deviation, physical units) added
        before quantization.
    offset, gain_error:
        Static non-idealities: the converter digitizes
        ``(v + offset) * (1 + gain_error)``.
    """

    n_bits: int
    v_min: float
    v_max: float
    noise_std: float = 0.0
    offset: float = 0.0
    gain_error: float = 0.0

    def __post_init__(self) -> None:
        if not 1 <= self.n_bits <= 24:
            raise ConfigurationError("n_bits must be in 1..24")
        if self.v_max <= self.v_min:
            raise ConfigurationError("v_max must exceed v_min")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be nonnegative")

    # ------------------------------------------------------------------
    @property
    def n_codes(self) -> int:
        """Number of output codes."""
        return 1 << self.n_bits

    @property
    def lsb(self) -> float:
        """Physical size of one code step."""
        return (self.v_max - self.v_min) / self.n_codes

    @property
    def sensor_spec(self) -> SensorSpec:
        """The declared range DP-Box should be calibrated for."""
        return SensorSpec(self.v_min, self.v_max)

    # ------------------------------------------------------------------
    def sample(
        self, values: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Digitize physical values into integer codes (saturating)."""
        values = np.asarray(values, dtype=float)
        distorted = (values + self.offset) * (1.0 + self.gain_error)
        if self.noise_std > 0:
            # dplint: allow[DPL001] -- models analog front-end noise, not
            # privacy noise; the DP mechanism sits after the ADC.
            rng = rng or np.random.default_rng()
            distorted = distorted + rng.normal(0.0, self.noise_std, values.shape)
        codes = np.floor((distorted - self.v_min) / self.lsb)
        return np.clip(codes, 0, self.n_codes - 1).astype(np.int64)

    def to_physical(self, codes: np.ndarray) -> np.ndarray:
        """Mid-rise reconstruction: code center in physical units."""
        codes = np.asarray(codes)
        if np.any((codes < 0) | (codes >= self.n_codes)):
            raise ConfigurationError("codes outside the ADC alphabet")
        return self.v_min + (codes + 0.5) * self.lsb

    def digitize(
        self, values: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Sample then reconstruct: what the firmware reads, in units."""
        return self.to_physical(self.sample(values, rng))
