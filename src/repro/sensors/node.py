"""A complete sensor node: signal → ADC → local privacy.

:class:`SensorNode` composes an :class:`~repro.sensors.adc.ADC` with a
local mechanism, exactly the datapath the paper's deployment has: the
physical value is digitized (which clamps it into the declared range by
construction) and the *digitized* reading is what gets privatized.  The
mechanism's range is the ADC's full scale, so calibration and physics
agree by construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms import LocalMechanism, make_mechanism
from .adc import ADC

__all__ = ["SensorNode"]


class SensorNode:
    """ADC + local mechanism, ranges tied together."""

    def __init__(
        self,
        adc: ADC,
        epsilon: float,
        arm: str = "thresholding",
        mechanism: Optional[LocalMechanism] = None,
        **mechanism_kwargs,
    ):
        self.adc = adc
        if mechanism is not None:
            if mechanism.sensor.m != adc.v_min or mechanism.sensor.M != adc.v_max:
                raise ConfigurationError(
                    "mechanism range must equal the ADC full scale"
                )
            self.mechanism = mechanism
        else:
            mechanism_kwargs.setdefault("input_bits", 14)
            self.mechanism = make_mechanism(
                arm, adc.sensor_spec, epsilon, **mechanism_kwargs
            )

    # ------------------------------------------------------------------
    def read_raw(
        self, physical: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """The firmware-visible (digitized, unprivatized) readings."""
        return self.adc.digitize(physical, rng)

    def read_private(
        self, physical: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Digitize then privatize — the only output that may leave."""
        return self.mechanism.privatize(self.read_raw(physical, rng))

    def is_private(self) -> bool:
        """Exact certification of the node's mechanism."""
        return bool(self.mechanism.ldp_report().satisfied)
