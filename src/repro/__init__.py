"""repro — Local Differential Privacy on Ultra-Low-Power Systems.

A full reproduction of Choi et al., *Guaranteeing Local Differential
Privacy on Ultra-low-power Systems* (ISCA 2018): the fixed-point Laplace
RNG and its exact output distribution, the proof that naive fixed-point
noising is not LDP, the resampling/thresholding guards with exact
threshold calibration, the DP-Box hardware model with Algorithm-1 budget
control, and the complete evaluation harness (Tables I–VI, Figs. 4–15).

Quickstart::

    import numpy as np
    from repro import SensorSpec, make_mechanism

    sensor = SensorSpec(94.0, 200.0)          # blood-pressure range
    mech = make_mechanism("thresholding", sensor, epsilon=0.5)
    noisy = mech.privatize(np.array([131.0])) # share this, not the truth
    assert mech.ldp_report().satisfied        # exact certification

See DESIGN.md for the subsystem inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from . import aggregation, analysis, attacks, core, datasets, fixedpoint, mechanisms, ml
from . import privacy, queries, rng, runtime, sensors, sim
from .core import (
    Command,
    DPBox,
    DPBoxConfig,
    DPBoxDriver,
    EnergyModel,
    GuardMode,
    NoisingResult,
)
from .errors import (
    BudgetExhaustedError,
    CalibrationError,
    ConfigurationError,
    FixedPointError,
    HardwareProtocolError,
    PrivacyError,
    PrivacyViolationError,
    ReproError,
    ResampleExhaustedError,
    UncalibratableConfigError,
)
from .mechanisms import (
    ARM_NAMES,
    DpBoxRandomizedResponse,
    FxpBaselineMechanism,
    IdealLaplaceMechanism,
    LocalMechanism,
    ResamplingMechanism,
    SensorSpec,
    ThresholdingMechanism,
    make_mechanism,
)
from .privacy import (
    BudgetAccountant,
    LossReport,
    RandomizedResponse,
    verify_additive_mechanism,
)
from .queries import (
    CountingQuery,
    MeanQuery,
    MedianQuery,
    VarianceQuery,
    measure_utility,
)
from .rng import FxpLaplaceConfig, FxpLaplaceRng, IdealLaplace
from .runtime import (
    CounterSink,
    JsonlSink,
    ReleaseEvent,
    ReleaseOutcome,
    ReleasePipeline,
    ReleaseRequest,
    RingBufferSink,
)

__version__ = "1.0.0"

__all__ = [
    # subpackages
    "aggregation",
    "analysis",
    "attacks",
    "core",
    "datasets",
    "fixedpoint",
    "mechanisms",
    "ml",
    "privacy",
    "queries",
    "rng",
    "runtime",
    "sensors",
    "sim",
    # DP-Box
    "Command",
    "DPBox",
    "DPBoxConfig",
    "DPBoxDriver",
    "EnergyModel",
    "GuardMode",
    "NoisingResult",
    # errors
    "BudgetExhaustedError",
    "CalibrationError",
    "ConfigurationError",
    "FixedPointError",
    "HardwareProtocolError",
    "PrivacyError",
    "PrivacyViolationError",
    "ReproError",
    "ResampleExhaustedError",
    "UncalibratableConfigError",
    # mechanisms
    "ARM_NAMES",
    "DpBoxRandomizedResponse",
    "FxpBaselineMechanism",
    "IdealLaplaceMechanism",
    "LocalMechanism",
    "ResamplingMechanism",
    "SensorSpec",
    "ThresholdingMechanism",
    "make_mechanism",
    # privacy
    "BudgetAccountant",
    "LossReport",
    "RandomizedResponse",
    "verify_additive_mechanism",
    # queries
    "CountingQuery",
    "MeanQuery",
    "MedianQuery",
    "VarianceQuery",
    "measure_utility",
    # rng
    "FxpLaplaceConfig",
    "FxpLaplaceRng",
    "IdealLaplace",
    # runtime
    "CounterSink",
    "JsonlSink",
    "ReleaseEvent",
    "ReleaseOutcome",
    "ReleasePipeline",
    "ReleaseRequest",
    "RingBufferSink",
    "__version__",
]
